//! Span-based event tracing.
//!
//! Enter/exit records accumulate in a bounded ring buffer; when full, the
//! oldest records are evicted (the tail of a run is usually the part under
//! investigation). Export is deterministic JSONL: records in arrival
//! order, fields in a fixed order, integers only — two identical
//! simulations produce byte-identical traces.

use crate::registry::SpanId;

/// Whether a record marks the start or end of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// Work began.
    Enter,
    /// Work finished.
    Exit,
}

impl SpanPhase {
    fn as_str(self) -> &'static str {
        match self {
            SpanPhase::Enter => "enter",
            SpanPhase::Exit => "exit",
        }
    }
}

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Timestamp in microseconds.
    pub t_us: u64,
    /// Which span (interned name).
    pub span: SpanId,
    /// Enter or exit.
    pub phase: SpanPhase,
    /// Acting entity (process id, host id, ...; caller-defined).
    pub actor: u64,
    /// Free-form detail (event kind, peer id, byte count, ...).
    pub tag: u64,
}

/// Bounded ring of [`TraceRecord`]s.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            records: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest if full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (wrapped, recent) = self.records.split_at(self.head.min(self.records.len()));
        recent.iter().chain(wrapped.iter())
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serialize to JSONL, resolving span ids through `span_name`.
    ///
    /// One record per line, keys in fixed order; output depends only on
    /// the records and names, so identical runs export identical bytes.
    pub fn to_jsonl(&self, span_name: impl Fn(SpanId) -> String) -> String {
        let mut out = String::with_capacity(self.len() * 96);
        for r in self.iter() {
            out.push_str(&format!(
                "{{\"t_us\":{},\"span\":\"{}\",\"phase\":\"{}\",\"actor\":{},\"tag\":{}}}\n",
                r.t_us,
                escape(&span_name(r.span)),
                r.phase.as_str(),
                r.actor,
                r.tag
            ));
        }
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn rec(t: u64, span: SpanId, phase: SpanPhase) -> TraceRecord {
        TraceRecord {
            t_us: t,
            span,
            phase,
            actor: 7,
            tag: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut reg = Registry::new();
        let s = reg.span("kernel.dispatch");
        let mut tb = TraceBuffer::new(3);
        for t in 0..5 {
            tb.push(rec(t, s, SpanPhase::Enter));
        }
        let times: Vec<u64> = tb.iter().map(|r| r.t_us).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(tb.dropped(), 2);
    }

    #[test]
    fn jsonl_is_deterministic_and_ordered() {
        let mut reg = Registry::new();
        let s = reg.span("gossip.reconcile");
        let mut tb = TraceBuffer::new(8);
        tb.push(rec(10, s, SpanPhase::Enter));
        tb.push(rec(15, s, SpanPhase::Exit));
        let name = |id| reg.span_name(id).unwrap_or_default().to_string();
        let a = tb.to_jsonl(name);
        let b = tb.to_jsonl(|id| reg.span_name(id).unwrap_or_default().to_string());
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"t_us\":10,\"span\":\"gossip.reconcile\",\"phase\":\"enter\",\"actor\":7,\"tag\":0}\n\
             {\"t_us\":15,\"span\":\"gossip.reconcile\",\"phase\":\"exit\",\"actor\":7,\"tag\":0}\n"
        );
    }
}
