//! Property tests: [`Histogram::merge`] forms a commutative monoid over
//! partial histograms, so per-process shards can be combined in any
//! order and grouping without changing the result. This is what lets the
//! registry fold subsystem histograms for health reports without caring
//! which component observed what first.

use proptest::prelude::*;

use ew_telemetry::Histogram;

fn from_obs(obs: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in obs {
        h.observe(v);
    }
    h
}

/// Observation magnitudes spanning the whole bucket range, including the
/// underflow bucket (zero) and sub-microsecond values.
fn obs_vec() -> impl Strategy<Value = Vec<f64>> {
    collection::vec(
        prop_oneof![
            Just(0.0),
            (1e-7f64..1e-3).boxed(),
            (1e-3f64..1e3).boxed(),
            (1e3f64..1e12).boxed(),
        ],
        0..40,
    )
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in obs_vec(), ys in obs_vec()) {
        let (a, b) = (from_obs(&xs), from_obs(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // IEEE-754 addition commutes exactly, min/max form a lattice, and
        // bucket counts are integers — the merged structs are identical.
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(xs in obs_vec(), ys in obs_vec(), zs in obs_vec()) {
        let (a, b, c) = (from_obs(&xs), from_obs(&ys), from_obs(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // Buckets, counts, and the min/max lattice associate exactly.
        prop_assert_eq!(left.buckets(), right.buckets());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        // Float addition only associates up to rounding.
        let tol = 1e-9 * left.sum().abs().max(1.0);
        prop_assert!(
            (left.sum() - right.sum()).abs() <= tol,
            "sums diverge beyond rounding: {} vs {}",
            left.sum(),
            right.sum()
        );
    }

    #[test]
    fn empty_histogram_is_the_identity(xs in obs_vec()) {
        let a = from_obs(&xs);
        let mut left = a.clone();
        left.merge(&Histogram::new());
        prop_assert_eq!(&left, &a);
        let mut right = Histogram::new();
        right.merge(&a);
        prop_assert_eq!(&right, &a);
    }

    #[test]
    fn merge_matches_pooled_observations(xs in obs_vec(), ys in obs_vec()) {
        let mut merged = from_obs(&xs);
        merged.merge(&from_obs(&ys));
        let pooled: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let pooled = from_obs(&pooled);
        prop_assert_eq!(merged.buckets(), pooled.buckets());
        prop_assert_eq!(merged.count(), pooled.count());
        prop_assert_eq!(merged.min(), pooled.min());
        prop_assert_eq!(merged.max(), pooled.max());
    }
}
