//! Exactness contract of the incremental delta engine: after *any* flip
//! sequence, every table entry equals a fresh recount, every served delta
//! equals the naive kernel, and table-driven heuristic runs retrace the
//! naive runs move for move.

use ew_ramsey::{
    flip_delta, heuristic_by_kind, ColoredGraph, DeltaTable, OpsCounter, SearchState, StepOutcome,
    Workspace,
};
use ew_sim::Xoshiro256;
use proptest::prelude::*;

proptest! {
    /// Arbitrary flip sequences leave every entry of the table equal to a
    /// from-scratch `count_through_edge`, and every delta equal to a
    /// fresh `flip_delta`.
    #[test]
    fn prop_table_exact_after_arbitrary_flips(
        seed: u64,
        n in 6usize..20,
        k in 3usize..6,
        flips in proptest::collection::vec((0usize..20, 0usize..20), 1..30),
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut g = ColoredGraph::random(n, &mut rng);
        let mut ops = OpsCounter::new();
        let mut ws = Workspace::new();
        let mut table = DeltaTable::new(&g, k, &mut ops, &mut ws);
        for (u, v) in flips {
            let (u, v) = (u % n, v % n);
            if u == v {
                continue;
            }
            g.flip(u, v);
            table.apply_flip(&g, u, v, &mut ops, &mut ws);
        }
        prop_assert!(table.verify_against(&g), "entries drifted (n={n} k={k})");
        let mut naive_ops = OpsCounter::new();
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert_eq!(
                    table.delta(&g, u, v),
                    flip_delta(&g, k, u, v, &mut naive_ops),
                    "delta ({}, {}) diverged", u, v
                );
            }
        }
    }

    /// A table-backed `SearchState` applies flips through the maintenance
    /// path and its cached objective stays exact.
    #[test]
    fn prop_incremental_state_objective_exact(
        seed: u64,
        flips in proptest::collection::vec((0usize..14, 0usize..14), 1..25),
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut st = SearchState::new_incremental(ColoredGraph::random(14, &mut rng), 4);
        for (u, v) in flips {
            if u == v {
                continue;
            }
            st.apply_flip(u, v);
        }
        let cached = st.count();
        prop_assert_eq!(cached, st.recount());
    }
}

/// Drive one heuristic over naive and incremental states with identical
/// RNG streams; the move sequences (and everything downstream of them)
/// must be identical.
fn assert_trajectories_match(kind: u8, n: usize, k: usize, seed: u64, steps: u64) {
    let mut rng_a = Xoshiro256::seed_from_u64(seed);
    let mut rng_b = Xoshiro256::seed_from_u64(seed);
    let g_a = ColoredGraph::random(n, &mut rng_a);
    let g_b = ColoredGraph::random(n, &mut rng_b);
    assert_eq!(g_a, g_b);
    let mut naive = SearchState::new(g_a, k);
    let mut incr = SearchState::new_incremental(g_b, k);
    let mut h_a = heuristic_by_kind(kind);
    let mut h_b = heuristic_by_kind(kind);
    let mut moves_a: Vec<(StepOutcome, u64)> = Vec::new();
    let mut moves_b: Vec<(StepOutcome, u64)> = Vec::new();
    for _ in 0..steps {
        moves_a.push((h_a.step(&mut naive, &mut rng_a), naive.count()));
        moves_b.push((h_b.step(&mut incr, &mut rng_b), incr.count()));
    }
    assert_eq!(
        moves_a, moves_b,
        "move sequences diverged (kind={kind} n={n} k={k} seed={seed})"
    );
    assert_eq!(
        naive.graph(),
        incr.graph(),
        "final graphs diverged (kind={kind})"
    );
    let stats = incr.kernel_stats();
    assert!(stats.table_lookups > 0, "the table actually served deltas");
    assert_eq!(stats.naive_evals, 0, "no naive fallbacks on the table arm");
}

#[test]
fn greedy_trajectory_is_identical_with_and_without_table() {
    assert_trajectories_match(0, 17, 4, 2024, 120);
}

#[test]
fn tabu_trajectory_is_identical_with_and_without_table() {
    assert_trajectories_match(1, 17, 4, 2025, 120);
}

#[test]
fn anneal_trajectory_is_identical_with_and_without_table() {
    assert_trajectories_match(2, 13, 4, 2026, 200);
}

#[test]
fn tabu_r5_class_trajectory_matches_on_larger_graph() {
    // The acceptance-criterion workload class: k = 5 on n >= 40.
    assert_trajectories_match(1, 40, 5, 77, 25);
}

#[test]
fn parallel_steepest_trajectory_is_identical_with_and_without_table() {
    use ew_ramsey::{Heuristic, ParallelSteepest};
    let mut rng_a = Xoshiro256::seed_from_u64(31);
    let mut rng_b = Xoshiro256::seed_from_u64(31);
    let mut naive = SearchState::new(ColoredGraph::random(18, &mut rng_a), 4);
    let mut incr = SearchState::new_incremental(ColoredGraph::random(18, &mut rng_b), 4);
    let mut h_a = ParallelSteepest::default();
    let mut h_b = ParallelSteepest::default();
    for _ in 0..40 {
        let a = h_a.step(&mut naive, &mut rng_a);
        let b = h_b.step(&mut incr, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(naive.count(), incr.count());
    }
    assert_eq!(naive.graph(), incr.graph());
}

#[test]
fn full_run_results_match_naive_reference() {
    // A full table-path run (the shape `ew-workload` executes for a work
    // unit) against a hand-rolled naive run of the same parameters: same
    // steps / best / graphs (only the ops accounting differs between the
    // two kernels).
    use ew_ramsey::run_search;
    let (seed, n, k, budget) = (4242u64, 17, 4, 400);
    let mut rng_a = Xoshiro256::seed_from_u64(seed);
    let start_a = ColoredGraph::random(n, &mut rng_a);
    let mut incr = SearchState::new_incremental(start_a, k);
    let mut h_a = heuristic_by_kind(1);
    let rep_a = run_search(&mut incr, h_a.as_mut(), &mut rng_a, budget);

    let mut rng_b = Xoshiro256::seed_from_u64(seed);
    let start_b = ColoredGraph::random(n, &mut rng_b);
    let mut naive = SearchState::new(start_b, k);
    let mut h_b = heuristic_by_kind(1);
    let rep_b = run_search(&mut naive, h_b.as_mut(), &mut rng_b, budget);

    assert_eq!(rep_a.steps, rep_b.steps);
    assert_eq!(rep_a.best_count, rep_b.best_count);
    assert_eq!(incr.graph(), naive.graph());
    assert_eq!(
        rep_a.counter_example.map(|g| g.to_bytes()),
        rep_b.counter_example.map(|g| g.to_bytes())
    );
}
