//! Steady-state allocation audit for the hot kernels.
//!
//! A counting global allocator wraps the system allocator; each test
//! warms a kernel up (first calls may grow the [`Workspace`] arena or the
//! delta table) and then asserts that further iterations perform **zero**
//! heap allocations. This is the enforcement half of the "allocation-free
//! kernels" claim — the benches measure speed, this pins the invariant.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use ew_ramsey::{
    count_total_ws, flip_delta_ws, ColoredGraph, DeltaTable, GreedyLocal, Heuristic, OpsCounter,
    SearchState, Workspace,
};
use ew_sim::Xoshiro256;

#[test]
fn flip_delta_ws_is_allocation_free_after_warmup() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    let g = ColoredGraph::random(43, &mut rng);
    let mut ops = OpsCounter::new();
    let mut ws = Workspace::new();
    flip_delta_ws(&g, 5, 0, 1, &mut ops, &mut ws); // size the arena
    let before = allocs();
    for u in 0..20usize {
        for v in (u + 1)..21 {
            std::hint::black_box(flip_delta_ws(&g, 5, u, v, &mut ops, &mut ws));
        }
    }
    assert_eq!(
        allocs() - before,
        0,
        "flip_delta_ws allocated in steady state"
    );
}

#[test]
fn count_total_ws_is_allocation_free_after_warmup() {
    let mut rng = Xoshiro256::seed_from_u64(8);
    let g = ColoredGraph::random(43, &mut rng);
    let mut ops = OpsCounter::new();
    let mut ws = Workspace::new();
    count_total_ws(&g, 5, &mut ops, &mut ws);
    let before = allocs();
    for _ in 0..5 {
        std::hint::black_box(count_total_ws(&g, 5, &mut ops, &mut ws));
    }
    assert_eq!(
        allocs() - before,
        0,
        "count_total_ws allocated in steady state"
    );
}

#[test]
fn table_maintenance_is_allocation_free_after_warmup() {
    let mut rng = Xoshiro256::seed_from_u64(9);
    let mut g = ColoredGraph::random(40, &mut rng);
    let mut ops = OpsCounter::new();
    let mut ws = Workspace::new();
    let mut table = DeltaTable::new(&g, 5, &mut ops, &mut ws);
    // Warm flips: the `verts` scratch list grows to its high-water mark.
    for i in 0..10usize {
        let (u, v) = (i % 40, (i * 7 + 1) % 40);
        if u == v {
            continue;
        }
        g.flip(u.min(v), u.max(v));
        table.apply_flip(&g, u.min(v), u.max(v), &mut ops, &mut ws);
    }
    let before = allocs();
    for i in 0..200usize {
        let (u, v) = (i % 40, (i * 13 + 3) % 40);
        if u == v {
            continue;
        }
        g.flip(u.min(v), u.max(v));
        table.apply_flip(&g, u.min(v), u.max(v), &mut ops, &mut ws);
        std::hint::black_box(table.delta(&g, 0, 1));
    }
    assert_eq!(
        allocs() - before,
        0,
        "table maintenance allocated in steady state"
    );
    assert!(table.verify_against(&g));
}

#[test]
fn greedy_steps_on_table_state_are_allocation_free_after_warmup() {
    let mut rng = Xoshiro256::seed_from_u64(10);
    let mut state = SearchState::new_incremental(ColoredGraph::random(40, &mut rng), 5);
    let mut greedy = GreedyLocal::default();
    for _ in 0..5 {
        greedy.step(&mut state, &mut rng); // warm the workspace + scratch
    }
    let before = allocs();
    for _ in 0..50 {
        greedy.step(&mut state, &mut rng);
    }
    assert_eq!(
        allocs() - before,
        0,
        "greedy steady-state steps allocated with the table enabled"
    );
}
