//! Monochromatic clique counting — the application's hot kernel.
//!
//! "The bulk of the work in each of the heuristics are integer test and
//! arithmetic instructions" (§4): counting the monochromatic `k`-cliques of
//! a coloring, and the cliques through a candidate edge, is exactly that
//! work. The counters here tally word-level integer operations in the same
//! conservative spirit as the paper's 1:1 instrumentation, and those totals
//! are what the reproduction's "ops" figures report.

use crate::graph::{Color, ColoredGraph};

/// Running total of useful integer operations, in the paper's counting
/// discipline: only the arithmetic of the search kernels counts — not
/// instrumentation, not toolkit overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpsCounter(pub u64);

impl OpsCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add `n` operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Total so far.
    pub fn total(&self) -> u64 {
        self.0
    }
}

/// Reusable scratch arena for the clique kernels. Holding one of these
/// per search thread makes every hot-path kernel
/// ([`count_mono_ws`]/[`count_through_edge_ws`]/[`flip_delta_ws`] and the
/// [`crate::delta::DeltaTable`] maintenance) allocation-free in steady
/// state: the buffers grow monotonically to the largest `(words, k)` seen
/// and are reused verbatim afterwards.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Full-candidate buffer for whole-graph counts.
    pub(crate) cand: Vec<u64>,
    /// Shared-neighborhood buffer (`row(u) & row(v)`).
    pub(crate) common: Vec<u64>,
    /// Second shared-neighborhood buffer (the second color of a flip
    /// delta; 3/4-way intersections during delta-table maintenance).
    pub(crate) inter: Vec<u64>,
    /// Recursion scratch: up to `k` levels of `w` words.
    pub(crate) scratch: Vec<u64>,
    /// Vertex-index buffer (set-bit positions of a neighborhood row).
    pub(crate) verts: Vec<usize>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Grow every buffer to fit graphs of `w` words and cliques of size
    /// `k`. No-op once sized — steady-state search never reallocates.
    pub(crate) fn ensure(&mut self, w: usize, k: usize) {
        let need = w * k.max(1);
        if self.scratch.len() < need {
            self.scratch.resize(need, 0);
        }
        for buf in [&mut self.cand, &mut self.common, &mut self.inter] {
            if buf.len() < w {
                buf.resize(w, 0);
            }
        }
        if self.verts.capacity() < w * 64 {
            self.verts.reserve(w * 64 - self.verts.capacity());
        }
    }

    /// Total bytes currently held by the arena (the `ramsey.workspace_bytes`
    /// telemetry gauge).
    pub fn bytes(&self) -> usize {
        (self.cand.capacity() + self.common.capacity() + self.inter.capacity())
            .saturating_add(self.scratch.capacity())
            * 8
            + self.verts.capacity() * std::mem::size_of::<usize>()
    }
}

/// Word-wide `k == 2` base case: the number of unordered pairs within
/// `cand` that are `color`-adjacent. For each set vertex `v` this ANDs
/// `v`'s row against the candidates above `v` and popcounts — no `next`
/// buffer is materialized and no `k == 1` frames are entered, which
/// shortens the dominant `R(4)`/`R(5)` recursions by two levels.
fn count_pairs(g: &ColoredGraph, color: Color, cand: &[u64], ops: &mut OpsCounter) -> u64 {
    let w = cand.len();
    let mut total = 0u64;
    for wi in 0..w {
        let mut word = cand[wi];
        while word != 0 {
            let b = word.trailing_zeros() as usize;
            word &= word - 1;
            let v = wi * 64 + b;
            let row = g.row(color, v);
            // v's own word, masked to indices strictly greater than v.
            let m = cand[wi] & row[wi] & !((1u64 << b) | ((1u64 << b) - 1));
            let mut pairs = m.count_ones() as u64;
            ops.add(2);
            for j in (wi + 1)..w {
                pairs += (cand[j] & row[j]).count_ones() as u64;
                ops.add(2);
            }
            total += pairs;
            ops.add(1);
        }
    }
    total
}

/// Count `k`-cliques within the subgraph induced by `cand`, where every
/// vertex considered must be greater than the implicit current clique's
/// top vertex (encoded by `cand` already being masked). `scratch` supplies
/// `(k-2) * w` words of workspace so the recursion allocates nothing
/// (`k <= 2` needs none: those sizes run word-wide base cases).
fn count_rec(
    g: &ColoredGraph,
    color: Color,
    cand: &[u64],
    k: usize,
    ops: &mut OpsCounter,
    scratch: &mut [u64],
) -> u64 {
    let w = cand.len();
    if k == 1 {
        ops.add(w as u64);
        return cand.iter().map(|x| x.count_ones() as u64).sum();
    }
    if k == 2 {
        return count_pairs(g, color, cand, ops);
    }
    let (next, rest) = scratch.split_at_mut(w);
    let mut total = 0u64;
    // Iterate set bits of cand; for each vertex v, intersect candidates
    // with v's adjacency restricted to indices > v.
    for wi in 0..w {
        let mut word = cand[wi];
        while word != 0 {
            let b = word.trailing_zeros() as usize;
            word &= word - 1;
            let v = wi * 64 + b;
            let row = g.row(color, v);
            next[..wi].fill(0);
            // Mask to indices strictly greater than v.
            for j in wi..w {
                let mut m = cand[j] & row[j];
                if j == wi {
                    // Clear bits 0..=b (safe for b = 63).
                    m &= !((1u64 << b) | ((1u64 << b) - 1));
                }
                next[j] = m;
                ops.add(2);
            }
            if next.iter().any(|&x| x != 0) {
                total += count_rec(g, color, next, k - 1, ops, rest);
            }
            ops.add(1);
        }
    }
    total
}

fn fill_full_candidates(g: &ColoredGraph, cand: &mut [u64]) {
    let n = g.n();
    let w = g.words();
    cand[..w].fill(u64::MAX);
    let tail = n % 64;
    if tail != 0 {
        cand[w - 1] = (1u64 << tail) - 1;
    }
}

/// Count `j`-cliques of `color` within the vertex set `cand`. `j == 0` is
/// the empty clique (always exactly one); `j == 1` is a popcount. Used by
/// the whole-graph counters and the delta-table maintenance.
pub(crate) fn count_in_set(
    g: &ColoredGraph,
    color: Color,
    cand: &[u64],
    j: usize,
    ops: &mut OpsCounter,
    scratch: &mut [u64],
) -> u64 {
    match j {
        0 => 1,
        1 => {
            ops.add(cand.len() as u64);
            cand.iter().map(|x| x.count_ones() as u64).sum()
        }
        2 => count_pairs(g, color, cand, ops),
        _ => count_rec(g, color, cand, j, ops, scratch),
    }
}

/// Count the monochromatic `k`-cliques of one color, reusing `ws`.
pub fn count_mono_ws(
    g: &ColoredGraph,
    color: Color,
    k: usize,
    ops: &mut OpsCounter,
    ws: &mut Workspace,
) -> u64 {
    assert!(k >= 2, "cliques of size < 2 are not meaningful here");
    if g.n() < k {
        return 0;
    }
    let w = g.words();
    ws.ensure(w, k);
    let Workspace { cand, scratch, .. } = ws;
    fill_full_candidates(g, cand);
    count_rec(g, color, &cand[..w], k, ops, scratch)
}

/// Count monochromatic `k`-cliques of both colors, reusing `ws`.
pub fn count_total_ws(g: &ColoredGraph, k: usize, ops: &mut OpsCounter, ws: &mut Workspace) -> u64 {
    count_mono_ws(g, Color::Red, k, ops, ws) + count_mono_ws(g, Color::Blue, k, ops, ws)
}

/// Count the monochromatic `k`-cliques of one color (allocating
/// convenience wrapper over [`count_mono_ws`]).
pub fn count_mono(g: &ColoredGraph, color: Color, k: usize, ops: &mut OpsCounter) -> u64 {
    count_mono_ws(g, color, k, ops, &mut Workspace::new())
}

/// Count monochromatic `k`-cliques of both colors (allocating wrapper).
pub fn count_total(g: &ColoredGraph, k: usize, ops: &mut OpsCounter) -> u64 {
    count_total_ws(g, k, ops, &mut Workspace::new())
}

/// Count the `k`-cliques *of the given color* that contain edge `(u, v)`,
/// reusing `ws`. Only meaningful when `(u, v)` currently has that color
/// (the count after recoloring is the same number, since the
/// shared-neighborhood rows do not involve the edge itself).
pub fn count_through_edge_ws(
    g: &ColoredGraph,
    color: Color,
    k: usize,
    u: usize,
    v: usize,
    ops: &mut OpsCounter,
    ws: &mut Workspace,
) -> u64 {
    assert!(k >= 2);
    let w = g.words();
    ws.ensure(w, k);
    let Workspace {
        common, scratch, ..
    } = ws;
    let (ru, rv) = (g.row(color, u), g.row(color, v));
    for j in 0..w {
        common[j] = ru[j] & rv[j];
        ops.add(1);
    }
    if k == 2 {
        return 1;
    }
    count_rec(g, color, &common[..w], k - 2, ops, scratch)
}

/// Count the `k`-cliques of one color through edge `(u, v)` (allocating
/// wrapper over [`count_through_edge_ws`]).
pub fn count_through_edge(
    g: &ColoredGraph,
    color: Color,
    k: usize,
    u: usize,
    v: usize,
    ops: &mut OpsCounter,
) -> u64 {
    count_through_edge_ws(g, color, k, u, v, ops, &mut Workspace::new())
}

/// The change in total monochromatic `k`-clique count if edge `(u, v)`
/// were flipped, without mutating the graph; reuses `ws` so steady-state
/// evaluation performs zero heap allocation.
pub fn flip_delta_ws(
    g: &ColoredGraph,
    k: usize,
    u: usize,
    v: usize,
    ops: &mut OpsCounter,
    ws: &mut Workspace,
) -> i64 {
    let cur = g.edge(u, v);
    let removed = count_through_edge_ws(g, cur, k, u, v, ops, ws);
    let added = count_through_edge_ws(g, cur.other(), k, u, v, ops, ws);
    added as i64 - removed as i64
}

/// The change in total monochromatic `k`-clique count if edge `(u, v)`
/// were flipped (allocating wrapper over [`flip_delta_ws`]).
pub fn flip_delta(g: &ColoredGraph, k: usize, u: usize, v: usize, ops: &mut OpsCounter) -> i64 {
    flip_delta_ws(g, k, u, v, ops, &mut Workspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ew_sim::Xoshiro256;

    fn ops() -> OpsCounter {
        OpsCounter::new()
    }

    /// Brute-force reference counter.
    fn brute_count(g: &ColoredGraph, color: Color, k: usize) -> u64 {
        fn rec(
            g: &ColoredGraph,
            color: Color,
            chosen: &mut Vec<usize>,
            start: usize,
            k: usize,
        ) -> u64 {
            if chosen.len() == k {
                return 1;
            }
            let mut total = 0;
            for v in start..g.n() {
                if chosen.iter().all(|&u| g.edge(u, v) == color) {
                    chosen.push(v);
                    total += rec(g, color, chosen, v + 1, k);
                    chosen.pop();
                }
            }
            total
        }
        rec(g, color, &mut Vec::new(), 0, k)
    }

    #[test]
    fn complete_red_graph_counts_binomials() {
        let g = ColoredGraph::monochromatic(10, Color::Red);
        // C(10,3) = 120, C(10,4) = 210, C(10,5) = 252.
        assert_eq!(count_mono(&g, Color::Red, 3, &mut ops()), 120);
        assert_eq!(count_mono(&g, Color::Red, 4, &mut ops()), 210);
        assert_eq!(count_mono(&g, Color::Red, 5, &mut ops()), 252);
        assert_eq!(count_mono(&g, Color::Blue, 3, &mut ops()), 0);
    }

    #[test]
    fn pentagon_has_no_mono_triangle() {
        let g = ColoredGraph::paley(5);
        assert_eq!(count_total(&g, 3, &mut ops()), 0, "C5 proves R(3) > 5");
    }

    #[test]
    fn paley_17_has_no_mono_4_clique() {
        let g = ColoredGraph::paley(17);
        assert_eq!(
            count_total(&g, 4, &mut ops()),
            0,
            "Paley(17) proves R(4) > 17"
        );
        // But it has monochromatic triangles, of course.
        assert!(count_total(&g, 3, &mut ops()) > 0);
    }

    #[test]
    fn k6_must_have_mono_triangle() {
        // R(3) = 6: every coloring on 6 vertices has a mono triangle.
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..50 {
            let g = ColoredGraph::random(6, &mut rng);
            assert!(count_total(&g, 3, &mut ops()) > 0);
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for n in [5, 9, 13, 20] {
            for k in [3, 4] {
                let g = ColoredGraph::random(n, &mut rng);
                for color in [Color::Red, Color::Blue] {
                    assert_eq!(
                        count_mono(&g, color, k, &mut ops()),
                        brute_count(&g, color, k),
                        "n={n} k={k} {color:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn through_edge_matches_brute_force() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let g = ColoredGraph::random(15, &mut rng);
        for k in [3, 4] {
            for (u, v) in [(0, 1), (2, 9), (13, 14)] {
                let color = g.edge(u, v);
                // Brute force: count k-subsets containing u, v, all same color.
                let mut expect = 0u64;
                let others: Vec<usize> = (0..15).filter(|&x| x != u && x != v).collect();
                #[allow(clippy::too_many_arguments)]
                fn subsets(
                    g: &ColoredGraph,
                    color: Color,
                    pool: &[usize],
                    chosen: &mut Vec<usize>,
                    start: usize,
                    need: usize,
                    acc: &mut u64,
                    u: usize,
                    v: usize,
                ) {
                    if chosen.len() == need {
                        *acc += 1;
                        return;
                    }
                    for i in start..pool.len() {
                        let x = pool[i];
                        let ok = g.edge(u, x) == color
                            && g.edge(v, x) == color
                            && chosen.iter().all(|&y| g.edge(y, x) == color);
                        if ok {
                            chosen.push(x);
                            subsets(g, color, pool, chosen, i + 1, need, acc, u, v);
                            chosen.pop();
                        }
                    }
                }
                subsets(
                    &g,
                    color,
                    &others,
                    &mut Vec::new(),
                    0,
                    k - 2,
                    &mut expect,
                    u,
                    v,
                );
                assert_eq!(
                    count_through_edge(&g, color, k, u, v, &mut ops()),
                    expect,
                    "k={k} edge=({u},{v})"
                );
            }
        }
    }

    #[test]
    fn flip_delta_matches_recount() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..20 {
            let mut g = ColoredGraph::random(14, &mut rng);
            let k = 4;
            let before = count_total(&g, k, &mut ops()) as i64;
            let (u, v) = (rng.next_below(14) as usize, rng.next_below(14) as usize);
            if u == v {
                continue;
            }
            let delta = flip_delta(&g, k, u, v, &mut ops());
            g.flip(u, v);
            let after = count_total(&g, k, &mut ops()) as i64;
            assert_eq!(after - before, delta, "edge ({u},{v})");
        }
    }

    #[test]
    fn edge_case_k2_counts_edges() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let g = ColoredGraph::random(12, &mut rng);
        let red = count_mono(&g, Color::Red, 2, &mut ops());
        let blue = count_mono(&g, Color::Blue, 2, &mut ops());
        assert_eq!(red + blue, 66, "C(12,2) edges total");
    }

    #[test]
    fn graph_smaller_than_k_has_no_cliques() {
        let g = ColoredGraph::monochromatic(3, Color::Red);
        assert_eq!(count_mono(&g, Color::Red, 4, &mut ops()), 0);
    }

    #[test]
    fn ops_counter_accumulates() {
        let g = ColoredGraph::paley(17);
        let mut c = ops();
        count_total(&g, 4, &mut c);
        assert!(
            c.total() > 100,
            "counting should cost real work: {}",
            c.total()
        );
        let before = c.total();
        count_total(&g, 4, &mut c);
        assert_eq!(c.total(), before * 2);
    }

    #[test]
    fn multiword_graphs_count_correctly() {
        // n=70 spans two words; compare against brute force for k=3.
        let mut rng = Xoshiro256::seed_from_u64(6);
        let g = ColoredGraph::random(70, &mut rng);
        assert_eq!(
            count_mono(&g, Color::Red, 3, &mut ops()),
            brute_count(&g, Color::Red, 3)
        );
    }
}
