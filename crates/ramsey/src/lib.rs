//! # ew-ramsey — the Ramsey Number Search application
//!
//! The first true Grid application (§3): a heuristic search for
//! counter-examples that improve the known lower bounds of classical
//! Ramsey numbers. This crate is the *computational* half — colored
//! graphs, monochromatic-clique counting, flip-delta evaluation, the
//! search heuristics, counter-example verification, and the problem
//! descriptor. The *distributed* half (clients, schedulers, persistent
//! state, gossip) lives in `ew-sched`, `ew-state`, and `everyware`; the
//! scheduling-plane plugin wrapping this kernel lives in `ew-workload`.

#![warn(missing_docs)]

pub mod bounds;
pub mod cliques;
pub mod delta;
pub mod graph;
pub mod parallel;
pub mod search;
pub mod work;

pub use bounds::{exact, lower_bound, verify_counter_example, Verification};
pub use cliques::{
    count_mono, count_mono_ws, count_through_edge, count_through_edge_ws, count_total,
    count_total_ws, flip_delta, flip_delta_ws, OpsCounter, Workspace,
};
pub use delta::{DeltaTable, TableStats};
pub use graph::{iter_bits, Color, ColoredGraph};
pub use parallel::{best_flip_parallel, ParallelSteepest};
pub use search::{
    heuristic_by_kind, run_search, Annealing, GreedyLocal, Heuristic, KernelStats, RunReport,
    SearchState, StepOutcome, TabuSearch,
};
pub use work::RamseyProblem;
