//! Two-colored complete graphs.
//!
//! The Ramsey search works "in the space of complete two-colored graphs"
//! (§3): every pair of vertices carries one of two colors, and a
//! counter-example for `R(k,k) > n` is a coloring of the complete graph on
//! `n` vertices with no monochromatic `k`-clique. [`ColoredGraph`] stores
//! one adjacency bitset per color per vertex so clique counting (the
//! application's hot kernel) runs on word-wide AND/popcount operations.

use ew_sim::Xoshiro256;

/// One of the two edge colors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Color {
    /// "Red" edges.
    Red,
    /// "Blue" edges.
    Blue,
}

impl Color {
    /// The other color.
    pub fn other(self) -> Color {
        match self {
            Color::Red => Color::Blue,
            Color::Blue => Color::Red,
        }
    }
}

/// A complete graph on `n` vertices with two-colored edges, stored as two
/// complementary bitset adjacency matrices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColoredGraph {
    n: usize,
    w: usize,
    red: Vec<u64>,
    blue: Vec<u64>,
}

impl ColoredGraph {
    /// Complete graph with every edge the given color.
    pub fn monochromatic(n: usize, color: Color) -> Self {
        assert!(n >= 1, "graph needs at least one vertex");
        let w = n.div_ceil(64);
        let mut g = ColoredGraph {
            n,
            w,
            red: vec![0; n * w],
            blue: vec![0; n * w],
        };
        let full = match color {
            Color::Red => &mut g.red,
            Color::Blue => &mut g.blue,
        };
        for v in 0..n {
            for word in 0..w {
                let mut bits = u64::MAX;
                let lo = word * 64;
                if lo + 64 > n {
                    bits = if n > lo { (1u64 << (n - lo)) - 1 } else { 0 };
                }
                // Clear the diagonal bit.
                if v / 64 == word {
                    bits &= !(1u64 << (v % 64));
                }
                full[v * w + word] = bits;
            }
        }
        g
    }

    /// Uniformly random coloring.
    pub fn random(n: usize, rng: &mut Xoshiro256) -> Self {
        let mut g = ColoredGraph::monochromatic(n, Color::Blue);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.chance(0.5) {
                    g.set_edge(u, v, Color::Red);
                }
            }
        }
        g
    }

    /// The Paley graph on `q` vertices (`q` prime, `q ≡ 1 mod 4`): edge
    /// `(u, v)` is red iff `u - v` is a quadratic residue mod `q`. Paley
    /// graphs are the classical Ramsey lower-bound witnesses — Paley(5) is
    /// the pentagon proving `R(3) > 5`, Paley(17) proves `R(4) > 17`.
    pub fn paley(q: usize) -> Self {
        assert!(q % 4 == 1, "Paley graphs need q ≡ 1 (mod 4)");
        // The quadratic-residue table below is only meaningful over the
        // field Z/q — for composite q this would silently build a graph
        // that is neither self-complementary nor a Ramsey witness.
        assert!(is_prime(q), "Paley graphs need prime q, got {q}");
        let mut is_qr = vec![false; q];
        for x in 1..q {
            is_qr[(x * x) % q] = true;
        }
        let mut g = ColoredGraph::monochromatic(q, Color::Blue);
        for u in 0..q {
            for v in (u + 1)..q {
                if is_qr[(v - u) % q] {
                    g.set_edge(u, v, Color::Red);
                }
            }
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per adjacency row.
    pub fn words(&self) -> usize {
        self.w
    }

    /// Number of edges (`n(n-1)/2`).
    pub fn edge_count(&self) -> usize {
        self.n * (self.n - 1) / 2
    }

    /// Color of edge `(u, v)`.
    pub fn edge(&self, u: usize, v: usize) -> Color {
        debug_assert!(u != v && u < self.n && v < self.n);
        if self.red[u * self.w + v / 64] >> (v % 64) & 1 == 1 {
            Color::Red
        } else {
            Color::Blue
        }
    }

    /// Set edge `(u, v)` to `color` (both directions).
    pub fn set_edge(&mut self, u: usize, v: usize, color: Color) {
        debug_assert!(u != v && u < self.n && v < self.n);
        let (on, off) = match color {
            Color::Red => (&mut self.red, &mut self.blue),
            Color::Blue => (&mut self.blue, &mut self.red),
        };
        for (a, b) in [(u, v), (v, u)] {
            on[a * self.w + b / 64] |= 1u64 << (b % 64);
            off[a * self.w + b / 64] &= !(1u64 << (b % 64));
        }
    }

    /// Flip edge `(u, v)` to its other color; returns the new color.
    pub fn flip(&mut self, u: usize, v: usize) -> Color {
        let new = self.edge(u, v).other();
        self.set_edge(u, v, new);
        new
    }

    /// Adjacency row of `v` in the given color.
    pub fn row(&self, color: Color, v: usize) -> &[u64] {
        let m = match color {
            Color::Red => &self.red,
            Color::Blue => &self.blue,
        };
        &m[v * self.w..(v + 1) * self.w]
    }

    /// Degree of `v` in the given color.
    pub fn degree(&self, color: Color, v: usize) -> u32 {
        self.row(color, v).iter().map(|w| w.count_ones()).sum()
    }

    /// Serialize to a portable byte form (red upper-triangle bits,
    /// row-major, big-endian length header) — the form checkpointed to
    /// persistent state managers and shipped between clients.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.edge_count() / 8 + 1);
        out.extend_from_slice(&(self.n as u32).to_be_bytes());
        let mut acc: u8 = 0;
        let mut nbits = 0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                acc <<= 1;
                if self.edge(u, v) == Color::Red {
                    acc |= 1;
                }
                nbits += 1;
                if nbits == 8 {
                    out.push(acc);
                    acc = 0;
                    nbits = 0;
                }
            }
        }
        if nbits > 0 {
            out.push(acc << (8 - nbits));
        }
        out
    }

    /// Inverse of [`ColoredGraph::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let n = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
        if n == 0 || n > 4096 {
            return None;
        }
        let edges = n * (n - 1) / 2;
        let need = 4 + edges.div_ceil(8);
        if bytes.len() != need {
            return None;
        }
        let mut g = ColoredGraph::monochromatic(n, Color::Blue);
        let mut bit = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                let byte = bytes[4 + bit / 8];
                if byte >> (7 - bit % 8) & 1 == 1 {
                    g.set_edge(u, v, Color::Red);
                }
                bit += 1;
            }
        }
        Some(g)
    }

    /// Internal consistency: red and blue rows are complementary and
    /// symmetric, diagonals clear. Debug/test aid.
    pub fn check_invariants(&self) -> bool {
        for u in 0..self.n {
            for v in 0..self.n {
                let r = self.red[u * self.w + v / 64] >> (v % 64) & 1;
                let b = self.blue[u * self.w + v / 64] >> (v % 64) & 1;
                if u == v {
                    if r != 0 || b != 0 {
                        return false;
                    }
                } else {
                    if r + b != 1 {
                        return false;
                    }
                    let rt = self.red[v * self.w + u / 64] >> (u % 64) & 1;
                    if r != rt {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Trial-division primality — `paley` sizes are tiny, so this is plenty.
fn is_prime(q: usize) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Iterate the set bits (vertex indices) of a bitset row.
pub fn iter_bits(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn monochromatic_construction() {
        for n in [1, 2, 5, 63, 64, 65, 130] {
            let g = ColoredGraph::monochromatic(n, Color::Red);
            assert!(g.check_invariants(), "n={n}");
            for u in 0..n {
                assert_eq!(g.degree(Color::Red, u), (n - 1) as u32);
                assert_eq!(g.degree(Color::Blue, u), 0);
            }
        }
    }

    #[test]
    fn set_and_flip_edges() {
        let mut g = ColoredGraph::monochromatic(6, Color::Blue);
        assert_eq!(g.edge(0, 5), Color::Blue);
        g.set_edge(0, 5, Color::Red);
        assert_eq!(g.edge(0, 5), Color::Red);
        assert_eq!(g.edge(5, 0), Color::Red, "symmetric");
        assert_eq!(g.flip(0, 5), Color::Blue);
        assert_eq!(g.edge(0, 5), Color::Blue);
        assert!(g.check_invariants());
    }

    #[test]
    fn random_graph_valid_and_seed_stable() {
        let mut r1 = Xoshiro256::seed_from_u64(4);
        let mut r2 = Xoshiro256::seed_from_u64(4);
        let g1 = ColoredGraph::random(43, &mut r1);
        let g2 = ColoredGraph::random(43, &mut r2);
        assert_eq!(g1, g2);
        assert!(g1.check_invariants());
        // Roughly half the edges each color.
        let red: u32 = (0..43).map(|v| g1.degree(Color::Red, v)).sum();
        let frac = red as f64 / (43.0 * 42.0);
        assert!((0.4..0.6).contains(&frac), "red fraction {frac}");
    }

    #[test]
    fn paley_pentagon_is_two_cycles() {
        let g = ColoredGraph::paley(5);
        assert!(g.check_invariants());
        for v in 0..5 {
            assert_eq!(g.degree(Color::Red, v), 2);
            assert_eq!(g.degree(Color::Blue, v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn paley_rejects_composite_q() {
        // 9 ≡ 1 (mod 4) but is composite: the residue table would be
        // garbage, so construction must refuse.
        let _ = ColoredGraph::paley(9);
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn paley_rejects_composite_q_33() {
        let _ = ColoredGraph::paley(33); // 33 = 3 · 11, 33 ≡ 1 (mod 4)
    }

    #[test]
    fn paley_17_is_self_complementary_regular() {
        let g = ColoredGraph::paley(17);
        assert!(g.check_invariants());
        for v in 0..17 {
            assert_eq!(g.degree(Color::Red, v), 8);
            assert_eq!(g.degree(Color::Blue, v), 8);
        }
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for n in [1, 2, 3, 17, 43, 64, 65] {
            let g = ColoredGraph::random(n, &mut rng);
            let bytes = g.to_bytes();
            let back = ColoredGraph::from_bytes(&bytes).expect("decode");
            assert_eq!(g, back, "n={n}");
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(ColoredGraph::from_bytes(&[]).is_none());
        assert!(ColoredGraph::from_bytes(&[0, 0, 0, 0]).is_none(), "n=0");
        assert!(ColoredGraph::from_bytes(&[0xFF; 4]).is_none(), "n too big");
        // Wrong payload length for n=5 (needs 4 + 2 bytes).
        assert!(ColoredGraph::from_bytes(&[0, 0, 0, 5, 1]).is_none());
        assert!(ColoredGraph::from_bytes(&[0, 0, 0, 5, 1, 2, 3]).is_none());
    }

    #[test]
    fn iter_bits_walks_set_bits() {
        let row = [0b1010u64, 0, 1 << 63];
        let bits: Vec<usize> = iter_bits(&row).collect();
        assert_eq!(bits, vec![1, 3, 191]);
        assert_eq!(iter_bits(&[0u64; 3]).count(), 0);
    }

    #[test]
    fn row_matches_edge_queries() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        let g = ColoredGraph::random(70, &mut rng);
        for v in [0, 35, 69] {
            let red_neigh: Vec<usize> = iter_bits(g.row(Color::Red, v)).collect();
            for u in 0..70 {
                let expect = u != v && g.edge(u, v) == Color::Red;
                assert_eq!(red_neigh.contains(&u), expect);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_bytes_round_trip(n in 2usize..40, seed: u64) {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let g = ColoredGraph::random(n, &mut rng);
            prop_assert_eq!(ColoredGraph::from_bytes(&g.to_bytes()).unwrap(), g);
        }

        #[test]
        fn prop_flips_preserve_invariants(seed: u64, flips in proptest::collection::vec((0usize..20, 0usize..20), 0..50)) {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let mut g = ColoredGraph::random(20, &mut rng);
            for (u, v) in flips {
                if u != v {
                    g.flip(u, v);
                }
            }
            prop_assert!(g.check_invariants());
        }
    }
}
