//! Parallelized heuristics.
//!
//! §6: "Our experience at SC98 showed that to search for R6, we will need
//! to parallelize some of the individual heuristics, each of which we will
//! implement as a computational client within the application. As a
//! result, we will develop ways in which EveryWare can be used to couple
//! tightly synchronized parallel codes."
//!
//! [`ParallelSteepest`] is that parallelization for the flip-delta
//! heuristics: each step evaluates the objective change of *every* edge of
//! the coloring concurrently (rayon data-parallelism over the `n(n-1)/2`
//! candidates — each evaluation only reads the shared graph), then applies
//! the single best move. Selection is deterministic regardless of thread
//! count or schedule: ties break toward the lexicographically smallest
//! edge. Per-thread operation counts are accumulated and deposited into
//! the state's counter, keeping the paper's accounting discipline.

use rayon::prelude::*;

use crate::cliques::{flip_delta, OpsCounter};
use crate::search::{Heuristic, SearchState, StepOutcome};
use ew_sim::Xoshiro256;

/// Steepest-descent with exhaustive parallel candidate evaluation and a
/// tabu tenure for plateau escape.
pub struct ParallelSteepest {
    /// Steps an edge stays tabu after being flipped.
    pub tenure: u64,
    step_no: u64,
    /// Edge → expiry step.
    tabu: std::collections::HashMap<(usize, usize), u64>,
    best_seen: u64,
}

impl ParallelSteepest {
    /// With the given tabu tenure.
    pub fn new(tenure: u64) -> Self {
        ParallelSteepest {
            tenure,
            step_no: 0,
            tabu: std::collections::HashMap::new(),
            best_seen: u64::MAX,
        }
    }
}

impl Default for ParallelSteepest {
    fn default() -> Self {
        ParallelSteepest::new(24)
    }
}

/// Evaluate every edge's flip delta in parallel; returns the best
/// non-excluded `(u, v, delta)` (ties toward the smallest edge) and the
/// total operations spent.
///
/// When the state's incremental [`DeltaTable`](crate::DeltaTable) is
/// enabled, each evaluation is a pure table read (the workers share the
/// table immutably); otherwise each worker runs the naive two-pass
/// kernel. Either way the selected move is identical.
///
/// `excluded` decides which edges are skipped (tabu); edges that would
/// reach a new global best are exempted by the caller via `aspiration`.
pub fn best_flip_parallel(
    state: &SearchState,
    excluded: impl Fn(usize, usize) -> bool + Sync,
    aspiration: impl Fn(i64) -> bool + Sync,
) -> (Option<(usize, usize, i64)>, u64) {
    let g = state.graph();
    let n = g.n();
    let k = state.k();
    let table = state.table();
    let edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let (best, ops_total) = edges
        .par_iter()
        .map(|&(u, v)| {
            let mut ops = OpsCounter::new();
            let d = match table {
                Some(t) => {
                    // One charged op: the lookup's subtraction.
                    ops.add(1);
                    t.delta(g, u, v)
                }
                None => flip_delta(g, k, u, v, &mut ops),
            };
            let candidate = if !excluded(u, v) || aspiration(d) {
                Some((u, v, d))
            } else {
                None
            };
            (candidate, ops.total())
        })
        .reduce(
            || (None, 0u64),
            |(a, ops_a), (b, ops_b)| {
                let best = match (a, b) {
                    (None, x) | (x, None) => x,
                    (Some(x), Some(y)) => {
                        // Deterministic total order: delta, then edge.
                        if (y.2, y.0, y.1) < (x.2, x.0, x.1) {
                            Some(y)
                        } else {
                            Some(x)
                        }
                    }
                };
                (best, ops_a + ops_b)
            },
        );
    (best, ops_total)
}

impl Heuristic for ParallelSteepest {
    fn name(&self) -> &str {
        "parallel-steepest"
    }

    fn step(&mut self, state: &mut SearchState, _rng: &mut Xoshiro256) -> StepOutcome {
        if state.is_counter_example() {
            return StepOutcome::Solved;
        }
        self.step_no += 1;
        self.best_seen = self.best_seen.min(state.count());
        let step_no = self.step_no;
        let tabu = &self.tabu;
        let count = state.count() as i64;
        let best_seen = self.best_seen as i64;
        let (best, ops) = best_flip_parallel(
            state,
            |u, v| tabu.get(&(u, v)).is_some_and(|&until| until > step_no),
            |d| count + d < best_seen,
        );
        state.add_external_ops(ops);
        let n = state.graph().n();
        state.note_table_lookups((n * (n - 1) / 2) as u64);
        let Some((u, v, d)) = best else {
            return StepOutcome::Stuck;
        };
        state.apply_flip_with_delta(u, v, d);
        self.tabu.insert((u, v), self.step_no + self.tenure);
        if self.tabu.len() > 4096 {
            let now = self.step_no;
            self.tabu.retain(|_, &mut until| until > now);
        }
        StepOutcome::Moved { delta: d }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ColoredGraph;
    use crate::search::run_search;

    #[test]
    fn parallel_best_flip_matches_sequential_scan() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut state = SearchState::random(20, 4, &mut rng);
        let (par_best, par_ops) = best_flip_parallel(&state, |_, _| false, |_| false);
        // Sequential reference scan.
        let n = state.graph().n();
        let mut seq_best: Option<(usize, usize, i64)> = None;
        for u in 0..n {
            for v in (u + 1)..n {
                let d = state.delta(u, v);
                let better = match seq_best {
                    None => true,
                    Some((bu, bv, bd)) => (d, u, v) < (bd, bu, bv),
                };
                if better {
                    seq_best = Some((u, v, d));
                }
            }
        }
        assert_eq!(par_best, seq_best);
        assert!(par_ops > 0);
    }

    #[test]
    fn parallel_result_is_deterministic_across_runs() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let state = SearchState::random(30, 5, &mut rng);
        let (a, ops_a) = best_flip_parallel(&state, |_, _| false, |_| false);
        let (b, ops_b) = best_flip_parallel(&state, |_, _| false, |_| false);
        assert_eq!(a, b, "thread schedule must not leak into the choice");
        assert_eq!(ops_a, ops_b, "op accounting is schedule-independent");
    }

    #[test]
    fn parallel_steepest_solves_small_instances() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut state = SearchState::random(5, 3, &mut rng);
        let mut h = ParallelSteepest::default();
        let rep = run_search(&mut state, &mut h, &mut rng, 300);
        assert!(rep.counter_example.is_some(), "R(3)>5 witness expected");
    }

    #[test]
    fn parallel_steepest_solves_r4_on_17() {
        // The full-neighborhood evaluation is strong: a 17-vertex R(4)
        // witness typically falls out in tens of steps.
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut state = SearchState::random(17, 4, &mut rng);
        let mut h = ParallelSteepest::default();
        let rep = run_search(&mut state, &mut h, &mut rng, 3_000);
        let ce = rep.counter_example.expect("R(4)>17 witness expected");
        let mut ops = OpsCounter::new();
        assert_eq!(crate::cliques::count_total(&ce, 4, &mut ops), 0);
    }

    #[test]
    fn tabu_exclusion_is_respected_and_aspiration_overrides() {
        let g = ColoredGraph::paley(5);
        let mut state = SearchState::new(g, 3);
        state.apply_flip(0, 1); // break the pentagon: count > 0
        assert!(state.count() > 0);
        // Exclude everything, no aspiration: stuck.
        let (none, _) = best_flip_parallel(&state, |_, _| true, |_| false);
        assert!(none.is_none());
        // Exclude everything, aspiration for improving moves: the repair
        // flip qualifies (it returns to count 0 < best seen).
        let (some, _) = best_flip_parallel(&state, |_, _| true, |d| d < 0);
        let (u, v, d) = some.expect("aspirating flip found");
        assert_eq!((u, v), (0, 1), "the broken edge is the best repair");
        assert!(d < 0);
    }

    #[test]
    fn step_counts_ops_into_the_state() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut state = SearchState::random(12, 4, &mut rng);
        let before = state.ops();
        let mut h = ParallelSteepest::default();
        h.step(&mut state, &mut rng);
        assert!(state.ops() > before, "parallel evaluation ops are credited");
    }
}
