//! The Ramsey problem descriptor.
//!
//! The work-unit envelope, execution entry point, and result types moved
//! to `ew-workload` when the scheduling plane went workload-agnostic;
//! what remains here is the problem instance itself, which still travels
//! over the lingua franca inside workload configuration.

#[cfg(test)]
use ew_proto::wire::{WireDecode, WireEncode};
use ew_proto::wire_struct;

/// The problem instance: find a counter-example for `R(k, k) > n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RamseyProblem {
    /// Clique size to avoid.
    pub k: u32,
    /// Number of vertices to color.
    pub n: u32,
}

wire_struct!(RamseyProblem { k, n });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_wire_round_trip() {
        let p = RamseyProblem { k: 5, n: 43 };
        assert_eq!(RamseyProblem::from_wire(&p.to_wire()).unwrap(), p);
    }
}
