//! Work descriptors — the units the schedulers hand to clients.
//!
//! A [`WorkUnit`] tells a computational client which problem to attack,
//! with which heuristic, from which seed, for how many steps; a
//! [`WorkResult`] reports back progress, operation counts, and any
//! counter-example found. Both travel over the lingua franca, so both are
//! wire-encoded structs.

#[cfg(test)]
use ew_proto::wire::{WireDecode, WireEncode};
use ew_proto::wire_struct;
use ew_sim::Xoshiro256;

use crate::graph::ColoredGraph;
use crate::search::{heuristic_by_kind, run_search, SearchState};

/// The problem instance: find a counter-example for `R(k, k) > n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RamseyProblem {
    /// Clique size to avoid.
    pub k: u32,
    /// Number of vertices to color.
    pub n: u32,
}

wire_struct!(RamseyProblem { k, n });

/// One schedulable unit of search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkUnit {
    /// Unique id (issued by a scheduler).
    pub id: u64,
    /// Problem instance.
    pub problem: RamseyProblem,
    /// Heuristic kind (see [`heuristic_by_kind`]): 0 greedy, 1 tabu,
    /// 2 annealing.
    pub heuristic: u8,
    /// RNG seed for the starting coloring and the heuristic's draws.
    pub seed: u64,
    /// Heuristic steps to run before reporting back.
    pub step_budget: u64,
    /// Optional starting coloring (work migrated from another client);
    /// empty means start from a seeded random coloring.
    pub start_graph: Vec<u8>,
}

wire_struct!(WorkUnit {
    id,
    problem,
    heuristic,
    seed,
    step_budget,
    start_graph
});

/// A client's report after exhausting a unit's budget (or solving it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkResult {
    /// The unit this answers.
    pub unit_id: u64,
    /// Steps actually executed.
    pub steps: u64,
    /// Useful integer operations expended (the paper's conservative count).
    pub ops: u64,
    /// Best objective value reached.
    pub best_count: u64,
    /// Serialized counter-example, if found ([`ColoredGraph::to_bytes`]).
    pub counter_example: Vec<u8>,
    /// Final coloring, for migration to another client.
    pub final_graph: Vec<u8>,
}

wire_struct!(WorkResult {
    unit_id,
    steps,
    ops,
    best_count,
    counter_example,
    final_graph
});

/// Execute a work unit to completion on the calling thread. This is the
/// real computation the simulated clients model and the live examples
/// run. Runs with the incremental delta table — which produces the exact
/// move sequence and results of the naive kernel (proptested), only
/// faster — and also reports the kernel counters for `ramsey.*`
/// telemetry.
pub fn execute_work_unit_traced(unit: &WorkUnit) -> (WorkResult, crate::search::KernelStats) {
    let mut rng = Xoshiro256::seed_from_u64(unit.seed);
    let start = if unit.start_graph.is_empty() {
        ColoredGraph::random(unit.problem.n as usize, &mut rng)
    } else {
        ColoredGraph::from_bytes(&unit.start_graph)
            .unwrap_or_else(|| ColoredGraph::random(unit.problem.n as usize, &mut rng))
    };
    let mut state = SearchState::new_incremental(start, unit.problem.k as usize);
    let mut heuristic = heuristic_by_kind(unit.heuristic);
    let report = run_search(&mut state, heuristic.as_mut(), &mut rng, unit.step_budget);
    let result = WorkResult {
        unit_id: unit.id,
        steps: report.steps,
        ops: report.ops,
        best_count: report.best_count,
        counter_example: report
            .counter_example
            .map(|g| g.to_bytes())
            .unwrap_or_default(),
        final_graph: state.graph().to_bytes(),
    };
    (result, state.kernel_stats())
}

/// Execute a work unit, discarding the kernel counters.
pub fn execute_work_unit(unit: &WorkUnit) -> WorkResult {
    execute_work_unit_traced(unit).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{verify_counter_example, Verification};
    use crate::cliques::OpsCounter;

    fn unit(k: u32, n: u32, heuristic: u8, steps: u64) -> WorkUnit {
        WorkUnit {
            id: 1,
            problem: RamseyProblem { k, n },
            heuristic,
            seed: 99,
            step_budget: steps,
            start_graph: Vec::new(),
        }
    }

    #[test]
    fn work_unit_wire_round_trip() {
        let u = WorkUnit {
            id: 77,
            problem: RamseyProblem { k: 5, n: 43 },
            heuristic: 1,
            seed: 0xDEAD,
            step_budget: 1000,
            start_graph: vec![1, 2, 3],
        };
        let bytes = u.to_wire();
        assert_eq!(WorkUnit::from_wire(&bytes).unwrap(), u);
    }

    #[test]
    fn work_result_wire_round_trip() {
        let r = WorkResult {
            unit_id: 77,
            steps: 500,
            ops: 123456,
            best_count: 3,
            counter_example: vec![],
            final_graph: vec![9, 9],
        };
        assert_eq!(WorkResult::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn executing_easy_unit_finds_verified_counter_example() {
        let r = execute_work_unit(&unit(3, 5, 1, 1000));
        assert!(
            !r.counter_example.is_empty(),
            "R(3)>5 witness should be found"
        );
        let g = ColoredGraph::from_bytes(&r.counter_example).unwrap();
        let mut ops = OpsCounter::new();
        assert!(matches!(
            verify_counter_example(&g, 3, &mut ops),
            Verification::Valid { n: 5, .. }
        ));
        assert!(r.ops > 0);
        assert!(r.steps <= 1000);
    }

    #[test]
    fn budget_exhaustion_reports_partial_progress() {
        // 2 steps on a hard instance: no solution, but progress fields set.
        let r = execute_work_unit(&unit(5, 43, 0, 2));
        assert!(r.counter_example.is_empty());
        assert_eq!(r.steps, 2);
        assert!(r.best_count > 0);
        assert!(!r.final_graph.is_empty());
        // The final graph is resumable.
        assert!(ColoredGraph::from_bytes(&r.final_graph).is_some());
    }

    #[test]
    fn migrated_work_resumes_from_shipped_graph() {
        let first = execute_work_unit(&unit(4, 17, 1, 50));
        let resumed = WorkUnit {
            id: 2,
            problem: RamseyProblem { k: 4, n: 17 },
            heuristic: 1,
            seed: 123,
            step_budget: 1,
            start_graph: first.final_graph.clone(),
        };
        let r = execute_work_unit(&resumed);
        // One step from the shipped graph: the state was honoured (the
        // final graph differs from a fresh random start with seed 123).
        let fresh = execute_work_unit(&WorkUnit {
            start_graph: Vec::new(),
            ..resumed.clone()
        });
        assert_ne!(r.final_graph, fresh.final_graph);
    }

    #[test]
    fn corrupt_start_graph_falls_back_to_seeded_random() {
        let bad = WorkUnit {
            start_graph: vec![0xFF; 3],
            ..unit(3, 5, 0, 10)
        };
        // Must not panic; falls back to random start.
        let r = execute_work_unit(&bad);
        assert_eq!(r.steps.max(1), r.steps.max(1));
        assert!(!r.final_graph.is_empty());
    }

    #[test]
    fn deterministic_execution() {
        let a = execute_work_unit(&unit(4, 17, 2, 200));
        let b = execute_work_unit(&unit(4, 17, 2, 200));
        assert_eq!(a, b);
    }
}
