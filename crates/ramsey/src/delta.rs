//! Incremental flip-delta maintenance — the engine behind the hot path.
//!
//! The heuristics spend essentially all of their cycles asking "what would
//! flipping edge `(u, v)` do to the monochromatic `k`-clique count?" The
//! naive answer re-runs two full `count_through_edge` passes per query.
//! [`DeltaTable`] instead maintains `count_through_edge(color, k, u, v)`
//! for *every* edge and *both* colors, so a query is a table lookup and a
//! subtraction, and after each applied flip only the entries whose value
//! can have changed are adjusted — found through the same bitset rows the
//! counting kernels use, and adjusted incrementally rather than recounted.
//!
//! # Which entries can a flip touch?
//!
//! Write `E(c, u, v)` for the number of `(k-2)`-cliques of color `c`
//! inside `N_c(u) ∩ N_c(v)` (the table entry). Flip edge `(a, b)` from
//! color `old` to `new`. Because a vertex is never its own neighbor, the
//! set `N_c(a) ∩ N_c(b)` and every intersection below exclude `a` and `b`
//! automatically, which makes them identical before and after the flip —
//! the flip only moves bit `b` of `a`'s rows and bit `a` of `b`'s rows.
//! Three cases:
//!
//! - **`(a, b)` itself: unchanged.** The cliques counted by `E(c, a, b)`
//!   live inside `N_c(a) ∩ N_c(b)`, which contains neither endpoint, so
//!   none of them uses the flipped edge.
//! - **Incident entries `(a, x)` (and symmetrically `(b, x)`).** A
//!   counted clique changes only if it contains `b`, which requires
//!   `b ∈ N_c(a)` (true exactly when `c` is the flip's own color: `old`
//!   before, `new` after) and `x ∈ N_c(b)`. The number of such cliques is
//!   the number of `(k-3)`-cliques of `c` in
//!   `N_c(a) ∩ N_c(b) ∩ N_c(x)` — subtracted for `c = old`, added for
//!   `c = new`.
//! - **Detached entries `(u, v)`, `{u, v} ∩ {a, b} = ∅`.** A counted
//!   clique changes only if it contains *both* `a` and `b` (it would use
//!   the flipped edge), which requires `u, v ∈ N_c(a) ∩ N_c(b)` and
//!   `k >= 4`. The adjustment is the number of `(k-4)`-cliques of `c` in
//!   `N_c(u) ∩ N_c(v) ∩ N_c(a) ∩ N_c(b)` — for `k = 4` that is exactly 1,
//!   for `k = 5` a single AND-popcount.
//!
//! Every adjustment is word-wide integer arithmetic on the existing rows,
//! charged to the [`OpsCounter`] under the paper's counting discipline,
//! and the result is bit-identical to recomputing the entry from scratch
//! (debug-asserted in [`crate::search::SearchState`], proptested in
//! `tests/delta_table.rs`).

use crate::cliques::{count_in_set, count_through_edge_ws, OpsCounter, Workspace};
use crate::graph::{Color, ColoredGraph};

/// Counters describing the table's life so far (the `ramsey.*` telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Flip deltas served by table lookup.
    pub lookups: u64,
    /// Applied flips the table was maintained through.
    pub flips: u64,
    /// Individual entry adjustments performed across all flips.
    pub entries_refreshed: u64,
    /// Entries computed by full rebuilds (construction).
    pub entries_built: u64,
}

/// All `n(n-1)/2` per-edge through-counts for both colors, kept exact
/// across flips.
#[derive(Clone, Debug)]
pub struct DeltaTable {
    n: usize,
    k: usize,
    /// `count_through_edge(Red, k, u, v)` for `u < v`, triangular layout.
    red: Vec<u64>,
    /// Same for blue.
    blue: Vec<u64>,
    stats: TableStats,
}

#[inline]
fn edge_index(n: usize, u: usize, v: usize) -> usize {
    debug_assert!(u < v && v < n);
    u * (2 * n - u - 1) / 2 + (v - u - 1)
}

#[inline]
fn bit(row: &[u64], x: usize) -> bool {
    row[x / 64] >> (x % 64) & 1 == 1
}

impl DeltaTable {
    /// Build the full table for `g` with a fresh pass over every edge.
    /// Cost is `n(n-1)` through-counts, charged to `ops`; afterwards every
    /// query is O(1) and every flip touches only the provably affected
    /// entries.
    pub fn new(g: &ColoredGraph, k: usize, ops: &mut OpsCounter, ws: &mut Workspace) -> Self {
        assert!(k >= 2);
        let n = g.n();
        let edges = n * (n - 1) / 2;
        let mut table = DeltaTable {
            n,
            k,
            red: vec![0; edges],
            blue: vec![0; edges],
            stats: TableStats::default(),
        };
        for u in 0..n {
            for v in (u + 1)..n {
                let e = edge_index(n, u, v);
                table.red[e] = count_through_edge_ws(g, Color::Red, k, u, v, ops, ws);
                table.blue[e] = count_through_edge_ws(g, Color::Blue, k, u, v, ops, ws);
            }
        }
        table.stats.entries_built = 2 * edges as u64;
        table
    }

    /// The clique size this table tracks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Life-so-far counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The table entry `count_through_edge(color, k, u, v)`.
    pub fn through(&self, color: Color, u: usize, v: usize) -> u64 {
        let (u, v) = (u.min(v), u.max(v));
        let e = edge_index(self.n, u, v);
        match color {
            Color::Red => self.red[e],
            Color::Blue => self.blue[e],
        }
    }

    /// The objective change if `(u, v)` were flipped: one lookup per
    /// color and a subtraction. Pure read — safe to call from parallel
    /// scans (stats are bumped by the owning [`crate::SearchState`]).
    #[inline]
    pub fn delta(&self, g: &ColoredGraph, u: usize, v: usize) -> i64 {
        let (u, v) = (u.min(v), u.max(v));
        let e = edge_index(self.n, u, v);
        match g.edge(u, v) {
            Color::Red => self.blue[e] as i64 - self.red[e] as i64,
            Color::Blue => self.red[e] as i64 - self.blue[e] as i64,
        }
    }

    /// Note `count` table lookups (for hit-rate telemetry).
    pub fn note_lookups(&mut self, count: u64) {
        self.stats.lookups += count;
    }

    /// Maintain the table through the flip of `(a, b)`. `g` must already
    /// be the *post-flip* graph. Only the entries derived in the module
    /// docs are adjusted; each adjustment is an incremental `±` of a small
    /// intersection count, never a from-scratch recount.
    pub fn apply_flip(
        &mut self,
        g: &ColoredGraph,
        a: usize,
        b: usize,
        ops: &mut OpsCounter,
        ws: &mut Workspace,
    ) {
        let (a, b) = (a.min(b), a.max(b));
        self.stats.flips += 1;
        if self.k == 2 {
            // Through-counts for k = 2 are the constant 1.
            return;
        }
        let n = self.n;
        let w = g.words();
        let k = self.k;
        let new = g.edge(a, b);
        let old = new.other();
        ws.ensure(w, k);
        let Workspace {
            common,
            inter,
            scratch,
            verts,
            ..
        } = ws;
        let mut refreshed = 0u64;
        for (color, sign) in [(old, -1i64), (new, 1i64)] {
            let entries: &mut [u64] = match color {
                Color::Red => &mut self.red,
                Color::Blue => &mut self.blue,
            };
            let ra = g.row(color, a);
            let rb = g.row(color, b);
            // S_c = N_c(a) ∩ N_c(b); identical pre/post flip (see module
            // docs), so the post-flip rows are correct for both colors.
            for j in 0..w {
                common[j] = ra[j] & rb[j];
                ops.add(1);
            }
            // Incident entries: every x adjacent to a or b in this color.
            for x in 0..n {
                if x == a || x == b {
                    continue;
                }
                let in_a = bit(ra, x);
                let in_b = bit(rb, x);
                ops.add(1);
                if !in_a && !in_b {
                    continue;
                }
                // (k-3)-cliques of `color` in N_c(a) ∩ N_c(b) ∩ N_c(x).
                let c3 = if k == 3 {
                    1
                } else {
                    let rx = g.row(color, x);
                    for j in 0..w {
                        inter[j] = common[j] & rx[j];
                        ops.add(1);
                    }
                    count_in_set(g, color, &inter[..w], k - 3, ops, scratch)
                };
                if c3 != 0 {
                    if in_b {
                        let e = edge_index(n, a.min(x), a.max(x));
                        entries[e] = (entries[e] as i64 + sign * c3 as i64) as u64;
                        refreshed += 1;
                    }
                    if in_a {
                        let e = edge_index(n, b.min(x), b.max(x));
                        entries[e] = (entries[e] as i64 + sign * c3 as i64) as u64;
                        refreshed += 1;
                    }
                    ops.add(2);
                }
            }
            // Detached entries: pairs inside S_c, only reachable when the
            // counted cliques are big enough to contain both a and b.
            if k >= 4 {
                verts.clear();
                for (wi, &word) in common[..w].iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let t = m.trailing_zeros() as usize;
                        m &= m - 1;
                        verts.push(wi * 64 + t);
                    }
                }
                for i in 0..verts.len() {
                    let u = verts[i];
                    let ru = g.row(color, u);
                    for &v in &verts[i + 1..] {
                        // (k-4)-cliques of `color` in S_c ∩ N_c(u) ∩ N_c(v).
                        let c4 = if k == 4 {
                            1
                        } else {
                            let rv = g.row(color, v);
                            for j in 0..w {
                                inter[j] = common[j] & ru[j] & rv[j];
                                ops.add(2);
                            }
                            count_in_set(g, color, &inter[..w], k - 4, ops, scratch)
                        };
                        if c4 != 0 {
                            let e = edge_index(n, u, v);
                            entries[e] = (entries[e] as i64 + sign * c4 as i64) as u64;
                            refreshed += 1;
                            ops.add(1);
                        }
                    }
                }
            }
        }
        self.stats.entries_refreshed += refreshed;
    }

    /// Recompute every entry from scratch and compare — `true` when the
    /// incrementally maintained table is exact. Test/debug aid, `O(n^2)`
    /// through-counts.
    pub fn verify_against(&self, g: &ColoredGraph) -> bool {
        let mut ops = OpsCounter::new();
        let mut ws = Workspace::new();
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                let e = edge_index(self.n, u, v);
                let red = count_through_edge_ws(g, Color::Red, self.k, u, v, &mut ops, &mut ws);
                let blue = count_through_edge_ws(g, Color::Blue, self.k, u, v, &mut ops, &mut ws);
                if self.red[e] != red || self.blue[e] != blue {
                    return false;
                }
            }
        }
        true
    }

    /// Bytes held by the two entry arrays.
    pub fn bytes(&self) -> usize {
        (self.red.capacity() + self.blue.capacity()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliques::flip_delta;
    use ew_sim::Xoshiro256;

    fn fresh(n: usize, k: usize, seed: u64) -> (ColoredGraph, DeltaTable, Workspace) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let g = ColoredGraph::random(n, &mut rng);
        let mut ws = Workspace::new();
        let mut ops = OpsCounter::new();
        let t = DeltaTable::new(&g, k, &mut ops, &mut ws);
        assert!(ops.total() > 0, "construction is charged");
        (g, t, ws)
    }

    #[test]
    fn edge_index_is_dense_triangular() {
        let n = 9;
        let mut seen = vec![false; n * (n - 1) / 2];
        for u in 0..n {
            for v in (u + 1)..n {
                let e = edge_index(n, u, v);
                assert!(!seen[e], "({u},{v}) collides");
                seen[e] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fresh_table_matches_naive_deltas() {
        for k in [3, 4, 5] {
            let (g, t, _) = fresh(16, k, 7);
            let mut ops = OpsCounter::new();
            for u in 0..16 {
                for v in (u + 1)..16 {
                    assert_eq!(
                        t.delta(&g, u, v),
                        flip_delta(&g, k, u, v, &mut ops),
                        "k={k} edge ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn table_stays_exact_through_flips() {
        for k in [2, 3, 4, 5] {
            let (mut g, mut t, mut ws) = fresh(14, k, k as u64);
            let mut rng = Xoshiro256::seed_from_u64(99);
            let mut ops = OpsCounter::new();
            for _ in 0..40 {
                let u = rng.next_below(14) as usize;
                let v = rng.next_below(14) as usize;
                if u == v {
                    continue;
                }
                g.flip(u, v);
                t.apply_flip(&g, u, v, &mut ops, &mut ws);
            }
            assert!(t.verify_against(&g), "k={k}");
        }
    }

    #[test]
    fn maintenance_is_charged_and_counted() {
        let (mut g, mut t, mut ws) = fresh(12, 4, 3);
        let mut ops = OpsCounter::new();
        g.flip(2, 9);
        t.apply_flip(&g, 2, 9, &mut ops, &mut ws);
        assert!(ops.total() > 0, "maintenance ops are charged");
        let s = t.stats();
        assert_eq!(s.flips, 1);
        assert!(s.entries_refreshed > 0);
        assert!(s.entries_built > 0);
    }

    #[test]
    fn multiword_table_stays_exact() {
        // n = 70 spans two words; k = 4 exercises the detached-pair path.
        let (mut g, mut t, mut ws) = fresh(70, 4, 17);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut ops = OpsCounter::new();
        for _ in 0..12 {
            let u = rng.next_below(70) as usize;
            let v = rng.next_below(70) as usize;
            if u == v {
                continue;
            }
            g.flip(u, v);
            t.apply_flip(&g, u, v, &mut ops, &mut ws);
        }
        assert!(t.verify_against(&g));
    }

    #[test]
    fn k2_table_is_inert() {
        let (mut g, mut t, mut ws) = fresh(8, 2, 1);
        let mut ops = OpsCounter::new();
        g.flip(0, 1);
        t.apply_flip(&g, 0, 1, &mut ops, &mut ws);
        assert_eq!(t.delta(&g, 0, 1), 0, "k=2 deltas are always zero");
        assert!(t.verify_against(&g));
    }
}
