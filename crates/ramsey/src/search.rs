//! Heuristic search for Ramsey counter-examples.
//!
//! "We must use heuristic techniques to control the search process making
//! the process of counter-example identification related to distributed
//! 'branch-and-bound' state-space searching" (§3). The objective is the
//! number of monochromatic `k`-cliques; a coloring scoring zero *is* a
//! counter-example. Three heuristics are provided — greedy local search,
//! tabu search, and simulated annealing — mirroring the application's
//! multiple heuristics whose "execution profile ... depends largely on the
//! point in the search space where it is searching" (§4).

use std::collections::HashMap;

use ew_sim::Xoshiro256;

#[cfg(test)]
use crate::cliques::count_total;
use crate::cliques::{count_total_ws, flip_delta_ws, OpsCounter, Workspace};
use crate::delta::DeltaTable;
use crate::graph::ColoredGraph;

/// Kernel-level counters a search run accumulates — the source of the
/// `ramsey.*` telemetry published by the computational clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Flip deltas served by the incremental table.
    pub table_lookups: u64,
    /// Flip deltas evaluated by the naive two-pass kernel.
    pub naive_evals: u64,
    /// Applied flips maintained through the table.
    pub table_flips: u64,
    /// Table entries incrementally adjusted across all flips.
    pub entries_refreshed: u64,
    /// Bytes held by the reusable kernel workspace.
    pub workspace_bytes: u64,
    /// Bytes held by the delta table (0 when running naive).
    pub table_bytes: u64,
}

impl KernelStats {
    /// Fraction of delta queries served by the table (1.0 for a pure
    /// incremental run, 0.0 for a pure naive run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.table_lookups + self.naive_evals;
        if total == 0 {
            0.0
        } else {
            self.table_lookups as f64 / total as f64
        }
    }
}

/// A coloring under optimization, with its cached objective value and the
/// operation count spent on it.
#[derive(Clone, Debug)]
pub struct SearchState {
    graph: ColoredGraph,
    k: usize,
    mono_count: u64,
    ops: OpsCounter,
    ws: Workspace,
    table: Option<DeltaTable>,
    naive_evals: u64,
}

impl SearchState {
    /// Wrap a starting coloring for the `R(k, k)` problem, evaluating
    /// candidate flips with the naive two-pass kernel.
    pub fn new(graph: ColoredGraph, k: usize) -> Self {
        let mut ops = OpsCounter::new();
        let mut ws = Workspace::new();
        let mono_count = count_total_ws(&graph, k, &mut ops, &mut ws);
        SearchState {
            graph,
            k,
            mono_count,
            ops,
            ws,
            table: None,
            naive_evals: 0,
        }
    }

    /// Wrap a starting coloring with the incremental [`DeltaTable`]
    /// enabled: every `delta` is an O(1) lookup, maintained exactly
    /// across flips. Construction pays one full per-edge counting pass.
    pub fn new_incremental(graph: ColoredGraph, k: usize) -> Self {
        let mut state = Self::new(graph, k);
        state.enable_table();
        state
    }

    /// Build (or rebuild) the incremental delta table for this coloring.
    pub fn enable_table(&mut self) {
        self.table = Some(DeltaTable::new(
            &self.graph,
            self.k,
            &mut self.ops,
            &mut self.ws,
        ));
    }

    /// The incremental table, when enabled.
    pub fn table(&self) -> Option<&DeltaTable> {
        self.table.as_ref()
    }

    /// A random starting state (naive evaluation).
    pub fn random(n: usize, k: usize, rng: &mut Xoshiro256) -> Self {
        Self::new(ColoredGraph::random(n, rng), k)
    }

    /// The clique size being avoided.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of monochromatic `k`-cliques (the objective).
    pub fn count(&self) -> u64 {
        self.mono_count
    }

    /// The coloring.
    pub fn graph(&self) -> &ColoredGraph {
        &self.graph
    }

    /// Whether this coloring is a counter-example (objective zero).
    pub fn is_counter_example(&self) -> bool {
        self.mono_count == 0
    }

    /// Useful integer operations expended on this state so far.
    pub fn ops(&self) -> u64 {
        self.ops.total()
    }

    /// Objective change if `(u, v)` were flipped: an O(1) table lookup
    /// when the incremental table is enabled, a naive (allocation-free)
    /// two-pass evaluation otherwise.
    pub fn delta(&mut self, u: usize, v: usize) -> i64 {
        match &mut self.table {
            Some(t) => {
                t.note_lookups(1);
                // The lookup's subtraction is the one integer op charged.
                self.ops.add(1);
                t.delta(&self.graph, u, v)
            }
            None => {
                self.naive_evals += 1;
                flip_delta_ws(&self.graph, self.k, u, v, &mut self.ops, &mut self.ws)
            }
        }
    }

    /// Flip `(u, v)`, updating the cached objective incrementally.
    pub fn apply_flip(&mut self, u: usize, v: usize) {
        let d = self.delta(u, v);
        self.commit_flip(u, v, d);
    }

    /// Flip `(u, v)` whose objective change `delta` was already computed
    /// (e.g. by a parallel candidate evaluation). The caller is trusted;
    /// debug builds verify.
    pub fn apply_flip_with_delta(&mut self, u: usize, v: usize, delta: i64) {
        self.commit_flip(u, v, delta);
    }

    /// Apply a flip whose delta is `d`: mutate the graph, maintain the
    /// table, update the cached objective. Debug builds verify `d`
    /// against a fresh naive evaluation — the table must be bit-identical
    /// to the naive path at every step.
    fn commit_flip(&mut self, u: usize, v: usize, d: i64) {
        debug_assert_eq!(
            d,
            flip_delta_ws(
                &self.graph,
                self.k,
                u,
                v,
                &mut OpsCounter::new(),
                &mut self.ws
            ),
            "delta for ({u},{v}) must match the naive kernel"
        );
        self.graph.flip(u, v);
        if let Some(t) = &mut self.table {
            t.apply_flip(&self.graph, u, v, &mut self.ops, &mut self.ws);
        }
        self.mono_count = (self.mono_count as i64 + d) as u64;
    }

    /// Credit operations performed outside this state's own counter
    /// (parallel workers keep thread-local counters and deposit here).
    pub fn add_external_ops(&mut self, ops: u64) {
        self.ops.add(ops);
    }

    /// Note `count` delta queries served from the table by an external
    /// scan (the parallel evaluator reads the table directly).
    pub(crate) fn note_table_lookups(&mut self, count: u64) {
        if let Some(t) = &mut self.table {
            t.note_lookups(count);
        } else {
            self.naive_evals += count;
        }
    }

    /// Kernel counters for telemetry.
    pub fn kernel_stats(&self) -> KernelStats {
        let (table_lookups, table_flips, entries_refreshed, table_bytes) = match &self.table {
            Some(t) => {
                let s = t.stats();
                (s.lookups, s.flips, s.entries_refreshed, t.bytes() as u64)
            }
            None => (0, 0, 0, 0),
        };
        KernelStats {
            table_lookups,
            naive_evals: self.naive_evals,
            table_flips,
            entries_refreshed,
            workspace_bytes: self.ws.bytes() as u64,
            table_bytes,
        }
    }

    /// Recompute the objective from scratch (test aid; `O(n^k)`).
    pub fn recount(&mut self) -> u64 {
        count_total_ws(&self.graph, self.k, &mut self.ops, &mut self.ws)
    }
}

/// What one heuristic step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A flip was applied.
    Moved {
        /// Change in objective.
        delta: i64,
    },
    /// The heuristic found no acceptable move this step.
    Stuck,
    /// The state is already a counter-example; nothing to do.
    Solved,
}

/// A local-search heuristic over [`SearchState`].
pub trait Heuristic: Send {
    /// Short name ("greedy", "tabu", "anneal") used in work descriptors.
    fn name(&self) -> &str;
    /// Perform one move.
    fn step(&mut self, state: &mut SearchState, rng: &mut Xoshiro256) -> StepOutcome;
}

fn random_edge(n: usize, rng: &mut Xoshiro256) -> (usize, usize) {
    loop {
        let u = rng.next_below(n as u64) as usize;
        let v = rng.next_below(n as u64) as usize;
        if u != v {
            return (u.min(v), u.max(v));
        }
    }
}

/// Greedy local search over a random sample of candidate edges: evaluate
/// `sample` random flips, take the best (ties broken randomly), accept
/// even if worsening only when every candidate worsens and `restless` is
/// set (plateau escape).
pub struct GreedyLocal {
    /// Candidate flips evaluated per step.
    pub sample: usize,
    /// Accept the least-bad move when no improving move exists (otherwise
    /// report [`StepOutcome::Stuck`]).
    pub restless: bool,
}

impl Default for GreedyLocal {
    fn default() -> Self {
        GreedyLocal {
            sample: 64,
            restless: true,
        }
    }
}

impl Heuristic for GreedyLocal {
    fn name(&self) -> &str {
        "greedy"
    }

    fn step(&mut self, state: &mut SearchState, rng: &mut Xoshiro256) -> StepOutcome {
        if state.is_counter_example() {
            return StepOutcome::Solved;
        }
        let n = state.graph().n();
        let mut best: Option<((usize, usize), i64)> = None;
        let mut ties = 0u64;
        for _ in 0..self.sample {
            let (u, v) = random_edge(n, rng);
            let d = state.delta(u, v);
            match &mut best {
                None => {
                    best = Some(((u, v), d));
                    // The incumbent counts as the first tied candidate, so
                    // a second equal-scoring draw replaces it with
                    // probability 1/2, not 1.
                    ties = 1;
                }
                Some((edge, bd)) => {
                    if d < *bd {
                        *edge = (u, v);
                        *bd = d;
                        ties = 1;
                    } else if d == *bd {
                        // Reservoir-style random tie-break.
                        ties += 1;
                        if rng.next_below(ties) == 0 {
                            *edge = (u, v);
                        }
                    }
                }
            }
        }
        let ((u, v), d) = best.expect("sample >= 1");
        if d >= 0 && !self.restless {
            return StepOutcome::Stuck;
        }
        state.apply_flip(u, v);
        StepOutcome::Moved { delta: d }
    }
}

/// Tabu search: recently flipped edges are forbidden for `tenure` steps
/// unless flipping one would beat the best objective seen (aspiration).
pub struct TabuSearch {
    /// Candidate flips evaluated per step.
    pub sample: usize,
    /// Steps an edge stays tabu after being flipped.
    pub tenure: u64,
    step_no: u64,
    tabu: HashMap<(usize, usize), u64>,
    best_seen: u64,
}

impl TabuSearch {
    /// Tabu search with the given sample width and tenure.
    pub fn new(sample: usize, tenure: u64) -> Self {
        TabuSearch {
            sample,
            tenure,
            step_no: 0,
            tabu: HashMap::new(),
            best_seen: u64::MAX,
        }
    }
}

impl Default for TabuSearch {
    fn default() -> Self {
        TabuSearch::new(96, 24)
    }
}

impl Heuristic for TabuSearch {
    fn name(&self) -> &str {
        "tabu"
    }

    fn step(&mut self, state: &mut SearchState, rng: &mut Xoshiro256) -> StepOutcome {
        if state.is_counter_example() {
            return StepOutcome::Solved;
        }
        self.step_no += 1;
        self.best_seen = self.best_seen.min(state.count());
        let n = state.graph().n();
        let mut best: Option<((usize, usize), i64)> = None;
        for _ in 0..self.sample {
            let (u, v) = random_edge(n, rng);
            let d = state.delta(u, v);
            let is_tabu = self
                .tabu
                .get(&(u, v))
                .is_some_and(|&until| until > self.step_no);
            // Aspiration: a move that reaches a new global best is always
            // allowed.
            let aspires = (state.count() as i64 + d) < self.best_seen as i64;
            if is_tabu && !aspires {
                continue;
            }
            if best.is_none() || d < best.unwrap().1 {
                best = Some(((u, v), d));
            }
        }
        let Some(((u, v), d)) = best else {
            return StepOutcome::Stuck;
        };
        state.apply_flip(u, v);
        self.tabu.insert((u, v), self.step_no + self.tenure);
        // Bound the map: drop expired entries occasionally.
        if self.tabu.len() > 4 * self.sample.max(16) {
            let now = self.step_no;
            self.tabu.retain(|_, &mut until| until > now);
        }
        StepOutcome::Moved { delta: d }
    }
}

/// Simulated annealing with geometric cooling.
pub struct Annealing {
    /// Current temperature.
    pub temperature: f64,
    /// Multiplied into the temperature each step.
    pub cooling: f64,
    /// Temperature floor.
    pub floor: f64,
}

impl Default for Annealing {
    fn default() -> Self {
        Annealing {
            temperature: 4.0,
            cooling: 0.9995,
            floor: 0.05,
        }
    }
}

impl Heuristic for Annealing {
    fn name(&self) -> &str {
        "anneal"
    }

    fn step(&mut self, state: &mut SearchState, rng: &mut Xoshiro256) -> StepOutcome {
        if state.is_counter_example() {
            return StepOutcome::Solved;
        }
        let n = state.graph().n();
        let (u, v) = random_edge(n, rng);
        let d = state.delta(u, v);
        let accept = d <= 0 || rng.next_f64() < (-(d as f64) / self.temperature).exp();
        self.temperature = (self.temperature * self.cooling).max(self.floor);
        if accept {
            state.apply_flip(u, v);
            StepOutcome::Moved { delta: d }
        } else {
            StepOutcome::Stuck
        }
    }
}

/// Construct a heuristic by kind id (wire-stable; used in work units).
pub fn heuristic_by_kind(kind: u8) -> Box<dyn Heuristic> {
    match kind {
        0 => Box::new(GreedyLocal::default()),
        1 => Box::new(TabuSearch::default()),
        _ => Box::new(Annealing::default()),
    }
}

/// Outcome of a bounded search run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Steps actually executed.
    pub steps: u64,
    /// Useful integer operations expended.
    pub ops: u64,
    /// Best (lowest) objective reached.
    pub best_count: u64,
    /// The counter-example, if one was found.
    pub counter_example: Option<ColoredGraph>,
}

/// Drive `heuristic` for at most `max_steps` steps or until a
/// counter-example appears.
pub fn run_search(
    state: &mut SearchState,
    heuristic: &mut dyn Heuristic,
    rng: &mut Xoshiro256,
    max_steps: u64,
) -> RunReport {
    let ops_before = state.ops();
    let mut best = state.count();
    let mut steps = 0;
    while steps < max_steps && !state.is_counter_example() {
        heuristic.step(state, rng);
        steps += 1;
        best = best.min(state.count());
    }
    RunReport {
        steps,
        ops: state.ops() - ops_before,
        best_count: best,
        counter_example: state.is_counter_example().then(|| state.graph().clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Color;

    #[test]
    fn state_tracks_count_incrementally() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut st = SearchState::random(12, 4, &mut rng);
        for _ in 0..30 {
            let (u, v) = random_edge(12, &mut rng);
            st.apply_flip(u, v);
            let cached = st.count();
            assert_eq!(cached, st.recount(), "incremental count must match recount");
        }
    }

    #[test]
    fn solved_state_reports_solved() {
        let st = SearchState::new(ColoredGraph::paley(5), 3);
        assert!(st.is_counter_example());
        let mut g = GreedyLocal::default();
        let mut st = st;
        let mut rng = Xoshiro256::seed_from_u64(2);
        assert_eq!(g.step(&mut st, &mut rng), StepOutcome::Solved);
    }

    fn solves(kind: u8, n: usize, k: usize, seed: u64, budget: u64) -> bool {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut st = SearchState::random(n, k, &mut rng);
        let mut h = heuristic_by_kind(kind);
        let rep = run_search(&mut st, h.as_mut(), &mut rng, budget);
        if let Some(ce) = &rep.counter_example {
            let mut ops = OpsCounter::new();
            assert_eq!(
                count_total(ce, k, &mut ops),
                0,
                "claimed solution must verify"
            );
            true
        } else {
            false
        }
    }

    #[test]
    fn greedy_finds_r3_counter_example_on_5_vertices() {
        assert!(solves(0, 5, 3, 11, 500));
    }

    #[test]
    fn tabu_finds_r3_counter_example_on_5_vertices() {
        assert!(solves(1, 5, 3, 12, 500));
    }

    #[test]
    fn anneal_finds_r3_counter_example_on_5_vertices() {
        assert!(solves(2, 5, 3, 13, 20_000));
    }

    #[test]
    fn tabu_finds_r4_counter_example_on_12_vertices() {
        // R(4) = 18, so 12 vertices has plenty of counter-examples; a
        // competent heuristic should land one quickly.
        assert!(solves(1, 12, 4, 21, 5_000));
    }

    #[test]
    fn greedy_reduces_objective_on_17_vertices() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        let mut st = SearchState::random(17, 4, &mut rng);
        let start = st.count();
        let mut h = GreedyLocal::default();
        let rep = run_search(&mut st, &mut h, &mut rng, 300);
        assert!(
            rep.best_count < start / 2,
            "objective should at least halve: {start} -> {}",
            rep.best_count
        );
        assert!(rep.ops > 0);
    }

    #[test]
    fn run_report_counts_steps_and_ops() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        let mut st = SearchState::random(10, 4, &mut rng);
        let mut h = Annealing::default();
        let rep = run_search(&mut st, &mut h, &mut rng, 50);
        assert!(rep.steps <= 50);
        assert!(rep.ops > 0);
    }

    #[test]
    fn greedy_non_restless_reports_stuck_at_local_optimum() {
        // A pentagon is globally optimal for k=3; but use a near-solved
        // state: with restless=false and a solved state we get Solved; to
        // see Stuck we need a local optimum that is not global. Build a
        // 6-vertex graph (no counter-example exists) and run greedy until
        // it reports Stuck.
        let mut rng = Xoshiro256::seed_from_u64(51);
        let mut st = SearchState::random(6, 3, &mut rng);
        let mut h = GreedyLocal {
            sample: 30, // full-ish coverage of the 15 edges
            restless: false,
        };
        let mut saw_stuck = false;
        for _ in 0..200 {
            match h.step(&mut st, &mut rng) {
                StepOutcome::Stuck => {
                    saw_stuck = true;
                    break;
                }
                StepOutcome::Solved => panic!("R(3)=6: no counter-example on 6 vertices"),
                StepOutcome::Moved { .. } => {}
            }
        }
        assert!(
            saw_stuck,
            "greedy must bottom out on an unsolvable instance"
        );
        assert!(st.count() > 0);
    }

    #[test]
    fn annealing_cools() {
        let mut h = Annealing::default();
        let t0 = h.temperature;
        let mut rng = Xoshiro256::seed_from_u64(61);
        let mut st = SearchState::random(8, 3, &mut rng);
        for _ in 0..100 {
            h.step(&mut st, &mut rng);
        }
        assert!(h.temperature < t0);
        assert!(h.temperature >= h.floor);
    }

    #[test]
    fn heuristic_kinds_stable() {
        assert_eq!(heuristic_by_kind(0).name(), "greedy");
        assert_eq!(heuristic_by_kind(1).name(), "tabu");
        assert_eq!(heuristic_by_kind(2).name(), "anneal");
        assert_eq!(heuristic_by_kind(77).name(), "anneal");
    }

    #[test]
    fn paley_17_is_global_optimum_for_k4() {
        let st = SearchState::new(ColoredGraph::paley(17), 4);
        assert_eq!(st.count(), 0);
        assert!(st.is_counter_example());
        // And a single flip breaks it.
        let mut st2 = st.clone();
        st2.apply_flip(0, 1);
        assert!(st2.count() > 0);
        let _ = Color::Red; // silence unused import if assertions change
    }
}
