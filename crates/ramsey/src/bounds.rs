//! Known Ramsey-number bounds and counter-example verification.
//!
//! The persistent state managers "implement run-time sanity checks on all
//! persistent state accesses. If a process attempts to store a counter
//! example ... the persistent state manager first checks to make sure the
//! stored object is, indeed, a Ramsey counter example for the given problem
//! size" (§3.1.2). [`verify_counter_example`] is that check. The bounds
//! table reflects Radziszowski's survey as of the paper's era (ref \[28\]): in
//! particular `R(5) ≥ 43`, which set the application's 43-vertex search
//! space for `R5`.

use crate::cliques::{count_total, OpsCounter};
use crate::graph::ColoredGraph;

/// Exact classical Ramsey numbers known in 1998 (and still today):
/// `R(1)=1, R(2)=2, R(3)=6, R(4)=18`.
pub fn exact(k: usize) -> Option<usize> {
    match k {
        1 => Some(1),
        2 => Some(2),
        3 => Some(6),
        4 => Some(18),
        _ => None,
    }
}

/// Best published lower bound for `R(k)` in the paper's era: the smallest
/// `m` such that `R(k) ≥ m` was known. A counter-example on `m - 1` or more
/// vertices is new knowledge.
pub fn lower_bound(k: usize) -> Option<usize> {
    match k {
        1 => Some(1),
        2 => Some(2),
        3 => Some(6),
        4 => Some(18),
        5 => Some(43),  // §3: "the known lower bound is currently 43"
        6 => Some(102), // Kalbfleisch 1965, current in [28]
        7 => Some(205),
        _ => None,
    }
}

/// Outcome of verifying a claimed counter-example.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verification {
    /// The graph has no monochromatic `k`-clique: it proves `R(k) > n`.
    Valid {
        /// Vertices in the witness.
        n: usize,
        /// Whether this improves the era's published lower bound.
        improves_known_bound: bool,
    },
    /// The graph contains at least one monochromatic `k`-clique.
    Invalid {
        /// How many monochromatic `k`-cliques were found.
        violations: u64,
    },
}

/// The state manager's sanity check: is `g` genuinely a counter-example
/// for `R(k, k)`? Exhaustive (counts every monochromatic `k`-clique), so a
/// hostile or buggy client cannot slip a bad graph into persistent state.
pub fn verify_counter_example(g: &ColoredGraph, k: usize, ops: &mut OpsCounter) -> Verification {
    let violations = count_total(g, k, ops);
    if violations == 0 {
        let improves = lower_bound(k).is_some_and(|lb| g.n() + 1 > lb);
        Verification::Valid {
            n: g.n(),
            improves_known_bound: improves,
        }
    } else {
        Verification::Invalid { violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Color;
    use ew_sim::Xoshiro256;

    #[test]
    fn exact_values() {
        assert_eq!(exact(3), Some(6));
        assert_eq!(exact(4), Some(18));
        assert_eq!(exact(5), None);
    }

    #[test]
    fn lower_bounds_consistent_with_exact() {
        for k in 1..=4 {
            assert_eq!(exact(k), lower_bound(k));
        }
        assert_eq!(lower_bound(5), Some(43));
        assert!(lower_bound(99).is_none());
    }

    #[test]
    fn pentagon_verifies_for_r3() {
        let g = ColoredGraph::paley(5);
        let mut ops = OpsCounter::new();
        match verify_counter_example(&g, 3, &mut ops) {
            Verification::Valid {
                n,
                improves_known_bound,
            } => {
                assert_eq!(n, 5);
                assert!(!improves_known_bound, "R(3)=6 was already known");
            }
            other => panic!("pentagon must verify: {other:?}"),
        }
    }

    #[test]
    fn paley_17_verifies_for_r4_but_not_r3() {
        let g = ColoredGraph::paley(17);
        let mut ops = OpsCounter::new();
        assert!(matches!(
            verify_counter_example(&g, 4, &mut ops),
            Verification::Valid { n: 17, .. }
        ));
        assert!(matches!(
            verify_counter_example(&g, 3, &mut ops),
            Verification::Invalid { violations } if violations > 0
        ));
    }

    #[test]
    fn random_graph_on_6_vertices_never_verifies_for_r3() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut ops = OpsCounter::new();
        for _ in 0..20 {
            let g = ColoredGraph::random(6, &mut rng);
            assert!(matches!(
                verify_counter_example(&g, 3, &mut ops),
                Verification::Invalid { .. }
            ));
        }
    }

    #[test]
    fn hypothetical_43_vertex_counter_example_would_improve_bound() {
        // A mono-red K43 is obviously invalid, but test the bound logic by
        // construction: any *valid* 43-vertex graph improves R(5) >= 43 to
        // R(5) >= 44.
        let g = ColoredGraph::monochromatic(43, Color::Red);
        let mut ops = OpsCounter::new();
        assert!(matches!(
            verify_counter_example(&g, 5, &mut ops),
            Verification::Invalid { .. }
        ));
        // The improvement predicate itself:
        assert!(lower_bound(5).is_some_and(|lb| 43 + 1 > lb));
        assert!(lower_bound(5).is_none_or(|lb| 41 < lb));
    }
}
