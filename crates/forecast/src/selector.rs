//! Dynamic forecaster selection.
//!
//! The NWS trick: run every method in the battery on every stream, score
//! each method's one-step-ahead prediction against the measurement that
//! actually arrives, and let the method with the lowest cumulative error
//! make the *next* forecast. The winner changes as the series' character
//! changes — a median wins through spiky contention, exponential smoothing
//! wins through smooth drift — which is what made one mechanism serviceable
//! for CPU, network, and (in EveryWare) arbitrary program events.

use crate::methods::{standard_battery, Forecaster};

/// Error metric used to rank methods.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorMetric {
    /// Mean absolute error — the NWS default; robust to single busts.
    Mae,
    /// Mean squared error — punishes large busts harder.
    Mse,
}

struct Entry {
    method: Box<dyn Forecaster>,
    /// Sum of absolute / squared errors and the count scored.
    abs_err: f64,
    sq_err: f64,
    scored: u64,
}

/// A forecast and its provenance.
#[derive(Clone, Debug)]
pub struct Forecast {
    /// Predicted next value.
    pub value: f64,
    /// Name of the winning method.
    pub method: String,
    /// The winner's mean absolute error so far (`None` until scored once).
    pub mae: Option<f64>,
    /// The winner's root-mean-squared error so far.
    pub rmse: Option<f64>,
}

/// A battery of forecasters with error-ranked selection for one stream.
pub struct ForecasterSet {
    entries: Vec<Entry>,
    metric: ErrorMetric,
    n: u64,
}

impl Default for ForecasterSet {
    fn default() -> Self {
        Self::standard()
    }
}

impl ForecasterSet {
    /// The standard 17-method battery ranked by MAE.
    pub fn standard() -> Self {
        Self::new(standard_battery(), ErrorMetric::Mae)
    }

    /// A custom battery.
    pub fn new(methods: Vec<Box<dyn Forecaster>>, metric: ErrorMetric) -> Self {
        assert!(!methods.is_empty());
        ForecasterSet {
            entries: methods
                .into_iter()
                .map(|m| Entry {
                    method: m,
                    abs_err: 0.0,
                    sq_err: 0.0,
                    scored: 0,
                })
                .collect(),
            metric,
            n: 0,
        }
    }

    /// Feed one measurement: score every method's outstanding prediction
    /// against it, then let every method absorb it.
    pub fn update(&mut self, value: f64) {
        for e in &mut self.entries {
            if let Some(pred) = e.method.predict() {
                let err = pred - value;
                e.abs_err += err.abs();
                e.sq_err += err * err;
                e.scored += 1;
            }
            e.method.update(value);
        }
        self.n += 1;
    }

    /// Number of measurements absorbed.
    pub fn samples(&self) -> u64 {
        self.n
    }

    fn score(&self, e: &Entry) -> f64 {
        if e.scored == 0 {
            return f64::INFINITY;
        }
        match self.metric {
            ErrorMetric::Mae => e.abs_err / e.scored as f64,
            ErrorMetric::Mse => e.sq_err / e.scored as f64,
        }
    }

    /// Forecast the next value using the best-scoring method. `None` until
    /// at least one measurement has been absorbed.
    pub fn predict(&self) -> Option<Forecast> {
        let mut best: Option<(f64, &Entry, f64)> = None;
        for e in &self.entries {
            let Some(pred) = e.method.predict() else {
                continue;
            };
            let s = self.score(e);
            // Ties break toward the earlier battery entry (deterministic).
            let better = match &best {
                None => true,
                Some((_, _, bs)) => s < *bs,
            };
            if better {
                best = Some((pred, e, s));
            }
        }
        best.map(|(value, e, _)| Forecast {
            value,
            method: e.method.name().to_string(),
            mae: (e.scored > 0).then(|| e.abs_err / e.scored as f64),
            rmse: (e.scored > 0).then(|| (e.sq_err / e.scored as f64).sqrt()),
        })
    }

    /// The battery-wide MAE leaderboard: `(method, mae)` sorted best-first.
    /// Methods never scored report `f64::INFINITY`.
    pub fn leaderboard(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .entries
            .iter()
            .map(|e| (e.method.name().to_string(), self.score(e)))
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{ExpSmoothing, LastValue, SlidingMedian};
    use ew_sim::Xoshiro256;

    #[test]
    fn empty_set_predicts_none() {
        let s = ForecasterSet::standard();
        assert!(s.predict().is_none());
        assert_eq!(s.samples(), 0);
    }

    #[test]
    fn constant_series_predicted_exactly() {
        let mut s = ForecasterSet::standard();
        for _ in 0..50 {
            s.update(7.5);
        }
        let f = s.predict().unwrap();
        assert!((f.value - 7.5).abs() < 1e-9);
        assert_eq!(f.mae, Some(0.0));
    }

    #[test]
    fn selector_beats_worst_method_on_noisy_series() {
        // Noisy level series: median/mean methods should beat last-value.
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut s = ForecasterSet::standard();
        let mut last_only =
            ForecasterSet::new(vec![Box::new(LastValue::default())], ErrorMetric::Mae);
        let mut sel_err = 0.0;
        let mut last_err = 0.0;
        let mut count = 0;
        for _ in 0..500 {
            let v = 10.0 + rng.normal();
            if let Some(f) = s.predict() {
                sel_err += (f.value - v).abs();
                count += 1;
            }
            if let Some(f) = last_only.predict() {
                last_err += (f.value - v).abs();
            }
            s.update(v);
            last_only.update(v);
        }
        assert!(count > 400);
        assert!(
            sel_err < last_err * 0.85,
            "selector {sel_err:.1} should clearly beat last-value {last_err:.1}"
        );
    }

    #[test]
    fn selector_switches_method_when_series_character_changes() {
        let mut s = ForecasterSet::new(
            vec![
                Box::new(ExpSmoothing::new(0.05)),
                Box::new(SlidingMedian::new(5)),
                Box::new(LastValue::default()),
            ],
            ErrorMetric::Mae,
        );
        // Smooth constant phase: everything is tied near zero error, but
        // after a ramp the responsive methods must win the leaderboard.
        for i in 0..200 {
            s.update(i as f64 * 2.0);
        }
        let lead = s.leaderboard();
        assert_eq!(
            lead[0].0, "last",
            "on a steep ramp last-value has the least lag; got {lead:?}"
        );
    }

    #[test]
    fn mse_metric_punishes_busts_harder() {
        // One huge bust for method A, many small errors for method B.
        let mk = |metric| {
            ForecasterSet::new(
                vec![
                    Box::new(LastValue::default()) as Box<dyn Forecaster>,
                    Box::new(SlidingMedian::new(51)),
                ],
                metric,
            )
        };
        let series: Vec<f64> = {
            let mut v = vec![10.0; 60];
            v.push(500.0); // one spike: last-value busts once on the spike
            v.extend(std::iter::repeat_n(10.0, 60)); // ...and once after
            v
        };
        let mut mae_set = mk(ErrorMetric::Mae);
        let mut mse_set = mk(ErrorMetric::Mse);
        for &x in &series {
            mae_set.update(x);
            mse_set.update(x);
        }
        // Under MAE the two big busts of last-value are amortized; under
        // MSE they dominate. Median ranks strictly better under MSE.
        let mse_lead = mse_set.leaderboard();
        assert_eq!(mse_lead[0].0, "median_51");
    }

    #[test]
    fn leaderboard_sorted_ascending() {
        let mut s = ForecasterSet::standard();
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..100 {
            s.update(5.0 + rng.normal() * 0.1);
        }
        let rows = s.leaderboard();
        for pair in rows.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(rows.len(), 17);
    }

    #[test]
    fn forecast_reports_provenance() {
        let mut s = ForecasterSet::standard();
        for _ in 0..20 {
            s.update(3.0);
        }
        let f = s.predict().unwrap();
        assert!(!f.method.is_empty());
        assert!(f.rmse.is_some());
    }
}
