//! Dynamic time-out discovery.
//!
//! "By forecasting how quickly a server would respond to each type of
//! message, we were able to dynamically adjust the message time-out
//! interval to account for ambient network and CPU load conditions. This
//! dynamic time-out discovery proved crucial to overall program stability"
//! (§2.2). [`ForecastTimeout`] implements `ew-proto`'s
//! [`TimeoutPolicy`]: each `(peer, message type)` class keeps a forecast
//! stream of observed RTTs; the armed time-out is the forecast times a
//! safety factor, clamped to sane bounds, inflated multiplicatively after
//! an expiry and deflated after successes (so a transiently unreachable
//! server is probed again rather than written off).

use std::collections::HashMap;

use ew_proto::{EventTag, TimeoutPolicy};
use ew_sim::SimDuration;

use crate::selector::ForecasterSet;

/// Forecast-driven adaptive time-outs (the §2.2 mechanism).
pub struct ForecastTimeout {
    /// Time-out used before any history exists for a class.
    pub initial: SimDuration,
    /// Multiplier applied to the forecast RTT.
    pub safety: f64,
    /// Lower clamp on the armed time-out.
    pub min: SimDuration,
    /// Upper clamp on the armed time-out.
    pub max: SimDuration,
    /// Multiplier applied to a class's inflation after each expiry.
    pub backoff: f64,
    streams: HashMap<EventTag, ForecasterSet>,
    inflation: HashMap<EventTag, f64>,
}

impl ForecastTimeout {
    /// Sensible defaults for a wide-area 1998-grade network: 10 s initial,
    /// 4× safety factor, clamps at [250 ms, 2 min], 2× back-off.
    pub fn wan_default() -> Self {
        ForecastTimeout {
            initial: SimDuration::from_secs(10),
            safety: 4.0,
            min: SimDuration::from_millis(250),
            max: SimDuration::from_secs(120),
            backoff: 2.0,
            streams: HashMap::new(),
            inflation: HashMap::new(),
        }
    }

    /// Current inflation factor for a class (1.0 = healthy).
    pub fn inflation(&self, tag: EventTag) -> f64 {
        self.inflation.get(&tag).copied().unwrap_or(1.0)
    }

    /// Number of RTT samples absorbed for a class.
    pub fn samples(&self, tag: EventTag) -> u64 {
        self.streams.get(&tag).map_or(0, |s| s.samples())
    }
}

impl TimeoutPolicy for ForecastTimeout {
    fn timeout_for(&mut self, tag: EventTag) -> SimDuration {
        let inflate = self.inflation(tag);
        let base = match self.streams.get(&tag).and_then(|s| s.predict()) {
            Some(f) => {
                // Forecast plus a dispersion allowance: the safety factor
                // covers forecast error, the RMSE term covers variance.
                let spread = f.rmse.unwrap_or(0.0);
                SimDuration::from_secs_f64(f.value * self.safety + spread * 2.0)
            }
            None => self.initial,
        };
        let inflated = base.saturating_mul_f64(inflate);
        inflated.clamp(self.min, self.max)
    }

    fn observe_rtt(&mut self, tag: EventTag, rtt: SimDuration) {
        self.streams
            .entry(tag)
            .or_insert_with(ForecasterSet::standard)
            .update(rtt.as_secs_f64());
        // Healthy response: decay inflation toward 1.
        let inf = self.inflation.entry(tag).or_insert(1.0);
        *inf = (*inf * 0.5).max(1.0);
    }

    fn observe_timeout(&mut self, tag: EventTag) {
        let inf = self.inflation.entry(tag).or_insert(1.0);
        // Cap so one dead server cannot push the armed value past `max`
        // forever once it recovers.
        *inf = (*inf * self.backoff).min(64.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(peer: u64) -> EventTag {
        EventTag { peer, mtype: 0x101 }
    }

    #[test]
    fn initial_timeout_before_history() {
        let mut ft = ForecastTimeout::wan_default();
        assert_eq!(ft.timeout_for(tag(1)), SimDuration::from_secs(10));
    }

    #[test]
    fn timeout_tracks_fast_server_down() {
        let mut ft = ForecastTimeout::wan_default();
        for _ in 0..30 {
            ft.observe_rtt(tag(1), SimDuration::from_millis(40));
        }
        let t = ft.timeout_for(tag(1));
        // 40ms * 4 = 160ms, clamped up to the 250ms floor.
        assert_eq!(t, SimDuration::from_millis(250));
    }

    #[test]
    fn timeout_tracks_slow_server_up() {
        let mut ft = ForecastTimeout::wan_default();
        for _ in 0..30 {
            ft.observe_rtt(tag(2), SimDuration::from_secs(8));
        }
        let t = ft.timeout_for(tag(2));
        assert!(
            (t.as_secs_f64() - 32.0).abs() < 1.0,
            "8s*4 ≈ 32s, got {t:?}"
        );
    }

    #[test]
    fn per_class_independence() {
        let mut ft = ForecastTimeout::wan_default();
        for _ in 0..20 {
            ft.observe_rtt(tag(1), SimDuration::from_millis(100));
            ft.observe_rtt(tag(2), SimDuration::from_secs(5));
        }
        assert!(ft.timeout_for(tag(1)) < SimDuration::from_secs(1));
        assert!(ft.timeout_for(tag(2)) > SimDuration::from_secs(10));
    }

    #[test]
    fn expiry_inflates_then_success_deflates() {
        let mut ft = ForecastTimeout::wan_default();
        for _ in 0..20 {
            ft.observe_rtt(tag(1), SimDuration::from_secs(1));
        }
        let healthy = ft.timeout_for(tag(1));
        ft.observe_timeout(tag(1));
        ft.observe_timeout(tag(1));
        let inflated = ft.timeout_for(tag(1));
        assert!(
            inflated.as_secs_f64() >= healthy.as_secs_f64() * 3.9,
            "two 2x backoffs: {healthy:?} -> {inflated:?}"
        );
        // Recovery: one good RTT halves inflation; a few more restore it.
        for _ in 0..3 {
            ft.observe_rtt(tag(1), SimDuration::from_secs(1));
        }
        let recovered = ft.timeout_for(tag(1));
        assert!(recovered <= healthy * 2);
        assert_eq!(ft.inflation(tag(1)), 1.0);
    }

    #[test]
    fn inflation_capped() {
        let mut ft = ForecastTimeout::wan_default();
        for _ in 0..100 {
            ft.observe_timeout(tag(9));
        }
        assert_eq!(ft.inflation(tag(9)), 64.0);
        // And the armed value still respects the max clamp.
        assert!(ft.timeout_for(tag(9)) <= SimDuration::from_secs(120));
    }

    #[test]
    fn clamps_respected() {
        let mut ft = ForecastTimeout::wan_default();
        for _ in 0..20 {
            ft.observe_rtt(tag(1), SimDuration::from_micros(10));
        }
        assert!(ft.timeout_for(tag(1)) >= ft.min);
        for _ in 0..20 {
            ft.observe_rtt(tag(2), SimDuration::from_secs(500));
        }
        assert!(ft.timeout_for(tag(2)) <= ft.max);
    }

    #[test]
    fn variance_widens_timeout() {
        let mut steady = ForecastTimeout::wan_default();
        let mut jumpy = ForecastTimeout::wan_default();
        for i in 0..40 {
            steady.observe_rtt(tag(1), SimDuration::from_secs(1));
            let v = if i % 2 == 0 { 0.2 } else { 1.8 };
            jumpy.observe_rtt(tag(1), SimDuration::from_secs_f64(v));
        }
        // Same mean (1s) but jumpy's dispersion allowance is bigger than
        // steady's zero-RMSE stream whenever jumpy's winning forecast has
        // comparable level — at minimum it must not be *tighter*.
        assert!(jumpy.timeout_for(tag(1)) >= steady.timeout_for(tag(1)) / 2);
    }
}
