//! Dynamic benchmarking.
//!
//! "Our strategy was to manually instrument the various EveryWare
//! components and application modules with timing primitives, and then
//! passing the timing information to the forecasting modules to make
//! predictions. We refer to this process as *dynamic benchmarking*" (§2.2).
//!
//! A [`DynamicBenchmark`] is a registry of forecast streams keyed by an
//! arbitrary event identifier — the paper used `(server address, message
//! type)`; the Ramsey application also tags heuristic-step and work-unit
//! events. `begin`/`end` bracket one timed occurrence; the measured
//! duration feeds the key's [`ForecasterSet`].

use std::collections::HashMap;
use std::hash::Hash;

use ew_sim::{SimDuration, SimTime};

use crate::selector::{Forecast, ForecasterSet};

/// Registry of timed-event forecast streams keyed by `K`.
pub struct DynamicBenchmark<K: Hash + Eq + Clone> {
    streams: HashMap<K, ForecasterSet>,
    open: HashMap<(K, u64), SimTime>,
}

impl<K: Hash + Eq + Clone> Default for DynamicBenchmark<K> {
    fn default() -> Self {
        DynamicBenchmark {
            streams: HashMap::new(),
            open: HashMap::new(),
        }
    }
}

impl<K: Hash + Eq + Clone> DynamicBenchmark<K> {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of occurrence `instance` of event `key`.
    pub fn begin(&mut self, key: K, instance: u64, now: SimTime) {
        self.open.insert((key, instance), now);
    }

    /// Mark the end of occurrence `instance`; records and returns the
    /// elapsed duration, or `None` if no matching `begin` exists (e.g. the
    /// component restarted in between — the measurement is simply lost,
    /// never mismatched).
    pub fn end(&mut self, key: K, instance: u64, now: SimTime) -> Option<SimDuration> {
        let started = self.open.remove(&(key.clone(), instance))?;
        let elapsed = now.since(started);
        self.observe(key, elapsed.as_secs_f64());
        Some(elapsed)
    }

    /// Discard an open occurrence without recording (known-failed event).
    pub fn abandon(&mut self, key: K, instance: u64) {
        self.open.remove(&(key, instance));
    }

    /// Feed a directly measured value (seconds, rates, anything scalar).
    pub fn observe(&mut self, key: K, value: f64) {
        self.streams
            .entry(key)
            .or_insert_with(ForecasterSet::standard)
            .update(value);
    }

    /// Forecast the next value for `key`.
    pub fn forecast(&self, key: &K) -> Option<Forecast> {
        self.streams.get(key)?.predict()
    }

    /// Number of measurements absorbed for `key`.
    pub fn samples(&self, key: &K) -> u64 {
        self.streams.get(key).map_or(0, |s| s.samples())
    }

    /// Number of distinct event streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Drop a stream (e.g. a client that died; Grid components churn, and
    /// keeping every address ever seen would grow without bound).
    pub fn forget(&mut self, key: &K) {
        self.streams.remove(key);
    }

    /// Number of currently open (started, unfinished) occurrences.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn begin_end_measures_elapsed() {
        let mut db: DynamicBenchmark<(&str, u16)> = DynamicBenchmark::new();
        db.begin(("gossip-a", 0x101), 1, t(100));
        let d = db.end(("gossip-a", 0x101), 1, t(350)).unwrap();
        assert_eq!(d, SimDuration::from_millis(250));
        assert_eq!(db.samples(&("gossip-a", 0x101)), 1);
    }

    #[test]
    fn unmatched_end_is_lost_not_mismatched() {
        let mut db: DynamicBenchmark<&str> = DynamicBenchmark::new();
        assert!(db.end("x", 5, t(10)).is_none());
        assert_eq!(db.stream_count(), 0);
    }

    #[test]
    fn concurrent_instances_tracked_independently() {
        let mut db: DynamicBenchmark<&str> = DynamicBenchmark::new();
        db.begin("rpc", 1, t(0));
        db.begin("rpc", 2, t(50));
        let d2 = db.end("rpc", 2, t(150)).unwrap();
        let d1 = db.end("rpc", 1, t(300)).unwrap();
        assert_eq!(d2, SimDuration::from_millis(100));
        assert_eq!(d1, SimDuration::from_millis(300));
        assert_eq!(db.samples(&"rpc"), 2);
        assert_eq!(db.open_count(), 0);
    }

    #[test]
    fn abandon_discards_without_recording() {
        let mut db: DynamicBenchmark<&str> = DynamicBenchmark::new();
        db.begin("rpc", 1, t(0));
        db.abandon("rpc", 1);
        assert!(db.end("rpc", 1, t(100)).is_none());
        assert_eq!(db.samples(&"rpc"), 0);
    }

    #[test]
    fn forecast_converges_on_repeated_timings() {
        let mut db: DynamicBenchmark<&str> = DynamicBenchmark::new();
        let mut now = SimTime::ZERO;
        for i in 0..30 {
            db.begin("step", i, now);
            now += SimDuration::from_millis(200);
            db.end("step", i, now).unwrap();
            now += SimDuration::from_millis(13);
        }
        let f = db.forecast(&"step").unwrap();
        assert!((f.value - 0.2).abs() < 1e-6, "got {}", f.value);
    }

    #[test]
    fn separate_keys_separate_streams() {
        let mut db: DynamicBenchmark<(&str, u16)> = DynamicBenchmark::new();
        db.observe(("a", 1), 1.0);
        db.observe(("a", 2), 100.0);
        assert_eq!(db.stream_count(), 2);
        let fa = db.forecast(&("a", 1)).unwrap();
        let fb = db.forecast(&("a", 2)).unwrap();
        assert!((fa.value - 1.0).abs() < 1e-9);
        assert!((fb.value - 100.0).abs() < 1e-9);
    }
}
