//! The forecaster battery.
//!
//! "The NWS applies a set of light-weight time series forecasting methods
//! and dynamically chooses the technique that yields the greatest
//! forecasting accuracy over time" (§2.2, citing ref \[38\]). Each method here is
//! a one-step-ahead predictor cheap enough to run dozens of instances per
//! measurement stream: last value, running mean, sliding-window means and
//! medians at several widths, trimmed means, exponential smoothing at
//! several gains, and an adaptive-window mean. Selection across the battery
//! lives in [`crate::selector`].

use std::collections::VecDeque;

/// A one-step-ahead time-series predictor.
pub trait Forecaster: Send {
    /// Human-readable method name (appears in diagnostics and benches).
    fn name(&self) -> &str;
    /// Incorporate a new measurement.
    fn update(&mut self, value: f64);
    /// Predict the next measurement; `None` until enough history exists.
    fn predict(&self) -> Option<f64>;
}

/// Predicts the most recent measurement.
#[derive(Clone, Debug, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn name(&self) -> &str {
        "last"
    }
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
}

/// Predicts the mean of all history.
#[derive(Clone, Debug, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Forecaster for RunningMean {
    fn name(&self) -> &str {
        "running_mean"
    }
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// Fixed-width ring of recent measurements shared by windowed methods.
#[derive(Clone, Debug)]
struct Window {
    cap: usize,
    buf: VecDeque<f64>,
}

impl Window {
    fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        Window {
            cap,
            buf: VecDeque::with_capacity(cap),
        }
    }
    fn push(&mut self, v: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(v);
    }
}

/// Fixed-width ring that also keeps its contents sorted, for methods that
/// take order statistics on every prediction. `push` costs two binary
/// searches plus an O(w) memmove; order statistics are then O(1) reads of
/// `sorted`. The sort-per-predict alternative is O(w log w) *and* a fresh
/// allocation on every call, and `predict` runs at least once per
/// measurement (the selector scores every method's outstanding prediction
/// before feeding it the new value).
#[derive(Clone, Debug)]
struct SortedWindow {
    cap: usize,
    buf: VecDeque<f64>,
    /// The same multiset as `buf`, ascending by `f64::total_cmp` (a total
    /// order, so the outgoing element is always found by binary search).
    sorted: Vec<f64>,
}

impl SortedWindow {
    fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        SortedWindow {
            cap,
            buf: VecDeque::with_capacity(cap),
            sorted: Vec::with_capacity(cap),
        }
    }
    fn push(&mut self, v: f64) {
        if self.buf.len() == self.cap {
            let old = self.buf.pop_front().expect("cap >= 1");
            let i = self.sorted.partition_point(|x| x.total_cmp(&old).is_lt());
            self.sorted.remove(i);
        }
        self.buf.push_back(v);
        let i = self.sorted.partition_point(|x| x.total_cmp(&v).is_lt());
        self.sorted.insert(i, v);
    }
    fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Mean of the last `w` measurements.
#[derive(Clone, Debug)]
pub struct SlidingMean {
    name: String,
    win: Window,
}

impl SlidingMean {
    /// Window of width `w`.
    pub fn new(w: usize) -> Self {
        SlidingMean {
            name: format!("mean_{w}"),
            win: Window::new(w),
        }
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.win.push(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.win.buf.is_empty() {
            None
        } else {
            Some(self.win.buf.iter().sum::<f64>() / self.win.buf.len() as f64)
        }
    }
}

/// Median of the last `w` measurements — robust to the single wild
/// measurement a contended 1998 network produced regularly.
#[derive(Clone, Debug)]
pub struct SlidingMedian {
    name: String,
    win: SortedWindow,
}

impl SlidingMedian {
    /// Window of width `w`.
    pub fn new(w: usize) -> Self {
        SlidingMedian {
            name: format!("median_{w}"),
            win: SortedWindow::new(w),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.win.push(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.win.is_empty() {
            return None;
        }
        let v = &self.win.sorted;
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        })
    }
}

/// Mean of the last `w` measurements after dropping the top and bottom
/// `trim` fraction.
#[derive(Clone, Debug)]
pub struct TrimmedMean {
    name: String,
    win: SortedWindow,
    trim: f64,
}

impl TrimmedMean {
    /// Window `w`, trimming fraction `trim` in `[0, 0.5)` off each end.
    pub fn new(w: usize, trim: f64) -> Self {
        assert!((0.0..0.5).contains(&trim));
        TrimmedMean {
            name: format!("trimmed_{w}_{:02}", (trim * 100.0) as u32),
            win: SortedWindow::new(w),
            trim,
        }
    }
}

impl Forecaster for TrimmedMean {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.win.push(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.win.is_empty() {
            return None;
        }
        let v = &self.win.sorted;
        let k = (v.len() as f64 * self.trim).floor() as usize;
        let kept = &v[k..v.len() - k];
        if kept.is_empty() {
            return Some(v[v.len() / 2]);
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
}

/// Exponentially-smoothed estimate with gain `g`:
/// `est ← (1-g)·est + g·value`.
#[derive(Clone, Debug)]
pub struct ExpSmoothing {
    name: String,
    gain: f64,
    est: Option<f64>,
}

impl ExpSmoothing {
    /// Gain in `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0);
        ExpSmoothing {
            name: format!("exp_{:02}", (gain * 100.0) as u32),
            gain,
            est: None,
        }
    }
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        self.est = Some(match self.est {
            None => value,
            Some(e) => (1.0 - self.gain) * e + self.gain * value,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.est
    }
}

/// Adaptive-window mean: the window shrinks after a forecast bust (the
/// series jumped; old history is misleading) and grows while forecasts
/// verify (more history cuts noise). The NWS "adaptive window" methods work
/// this way.
#[derive(Clone, Debug)]
pub struct AdaptiveMean {
    name: String,
    min_w: usize,
    max_w: usize,
    cur_w: usize,
    history: VecDeque<f64>,
    /// Relative error above which the window is judged busted.
    bust_threshold: f64,
}

impl AdaptiveMean {
    /// Window bounds `[min_w, max_w]` and bust threshold (relative error).
    pub fn new(min_w: usize, max_w: usize, bust_threshold: f64) -> Self {
        assert!(min_w >= 1 && max_w >= min_w);
        AdaptiveMean {
            name: format!("adaptive_{min_w}_{max_w}"),
            min_w,
            max_w,
            cur_w: min_w,
            history: VecDeque::with_capacity(max_w),
            bust_threshold,
        }
    }
}

impl Forecaster for AdaptiveMean {
    fn name(&self) -> &str {
        &self.name
    }
    fn update(&mut self, value: f64) {
        if let Some(pred) = self.predict() {
            let scale = value.abs().max(1e-12);
            if (pred - value).abs() / scale > self.bust_threshold {
                self.cur_w = self.min_w;
            } else if self.cur_w < self.max_w {
                self.cur_w += 1;
            }
        }
        if self.history.len() == self.max_w {
            self.history.pop_front();
        }
        self.history.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let take = self.cur_w.min(self.history.len());
        let sum: f64 = self.history.iter().rev().take(take).sum();
        Some(sum / take as f64)
    }
}

/// The standard battery: the methods the NWS ran over every measurement
/// stream. 17 predictors.
pub fn standard_battery() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(LastValue::default()),
        Box::new(RunningMean::default()),
        Box::new(SlidingMean::new(5)),
        Box::new(SlidingMean::new(10)),
        Box::new(SlidingMean::new(20)),
        Box::new(SlidingMean::new(50)),
        Box::new(SlidingMedian::new(5)),
        Box::new(SlidingMedian::new(10)),
        Box::new(SlidingMedian::new(20)),
        Box::new(SlidingMedian::new(50)),
        Box::new(TrimmedMean::new(20, 0.1)),
        Box::new(TrimmedMean::new(50, 0.25)),
        Box::new(ExpSmoothing::new(0.05)),
        Box::new(ExpSmoothing::new(0.1)),
        Box::new(ExpSmoothing::new(0.3)),
        Box::new(ExpSmoothing::new(0.7)),
        Box::new(AdaptiveMean::new(3, 50, 0.5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &mut dyn Forecaster, xs: &[f64]) {
        for &x in xs {
            f.update(x);
        }
    }

    #[test]
    fn empty_forecasters_predict_none() {
        for f in standard_battery() {
            assert!(f.predict().is_none(), "{} should start empty", f.name());
        }
    }

    #[test]
    fn all_forecasters_track_a_constant_series() {
        for mut f in standard_battery() {
            feed(f.as_mut(), &[5.0; 60]);
            let p = f.predict().unwrap();
            assert!(
                (p - 5.0).abs() < 1e-9,
                "{} should predict the constant, got {p}",
                f.name()
            );
        }
    }

    #[test]
    fn last_value_tracks_jumps_immediately() {
        let mut f = LastValue::default();
        feed(&mut f, &[1.0, 1.0, 9.0]);
        assert_eq!(f.predict(), Some(9.0));
    }

    #[test]
    fn running_mean_averages_everything() {
        let mut f = RunningMean::default();
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn sliding_mean_forgets_old_history() {
        let mut f = SlidingMean::new(3);
        feed(&mut f, &[100.0, 1.0, 2.0, 3.0]);
        assert_eq!(f.predict(), Some(2.0));
    }

    #[test]
    fn sliding_median_ignores_outliers() {
        let mut f = SlidingMedian::new(5);
        feed(&mut f, &[10.0, 10.0, 10.0, 10.0, 1000.0]);
        assert_eq!(f.predict(), Some(10.0));
    }

    #[test]
    fn sliding_median_even_window_interpolates() {
        let mut f = SlidingMedian::new(4);
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let mut f = TrimmedMean::new(10, 0.2);
        feed(
            &mut f,
            &[0.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 1000.0],
        );
        // Trim 2 off each end: mean of eight 5.0s.
        assert_eq!(f.predict(), Some(5.0));
    }

    #[test]
    fn exp_smoothing_gain_controls_responsiveness() {
        let mut slow = ExpSmoothing::new(0.05);
        let mut fast = ExpSmoothing::new(0.7);
        for f in [&mut slow, &mut fast] {
            feed(f, &[0.0; 20]);
            f.update(10.0);
        }
        assert!(fast.predict().unwrap() > slow.predict().unwrap());
        assert!((fast.predict().unwrap() - 7.0).abs() < 1e-9);
        assert!((slow.predict().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn adaptive_mean_shrinks_window_on_level_shift() {
        let mut f = AdaptiveMean::new(2, 50, 0.5);
        feed(&mut f, &[10.0; 50]);
        // Level shift: forecasts bust, window resets, predictor recovers
        // within a few samples instead of averaging over 50 stale ones.
        feed(&mut f, &[100.0, 100.0, 100.0, 100.0]);
        let p = f.predict().unwrap();
        assert!(
            p > 70.0,
            "adaptive should have mostly snapped to 100, got {p}"
        );

        let mut rigid = SlidingMean::new(50);
        feed(&mut rigid, &[10.0; 50]);
        feed(&mut rigid, &[100.0, 100.0, 100.0, 100.0]);
        assert!(rigid.predict().unwrap() < 20.0, "fixed-50 window lags");
    }

    #[test]
    fn battery_names_are_unique() {
        let battery = standard_battery();
        let mut names: Vec<String> = battery.iter().map(|f| f.name().to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
