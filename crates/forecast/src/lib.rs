//! # ew-forecast — NWS-style performance forecasting
//!
//! "A set of performance forecasting services that can make short-term
//! resource and application performance predictions in near-real time"
//! (§2). This crate reimplements the Network Weather Service forecasting
//! subsystem as EveryWare adapted it:
//!
//! * [`methods`] — the battery of lightweight one-step-ahead predictors;
//! * [`selector`] — MAE/MSE-ranked dynamic selection across the battery;
//! * [`dynbench`] — *dynamic benchmarking*: tagging and timing arbitrary
//!   repetitive program events and feeding the timings to forecasters;
//! * [`timeout`] — dynamic time-out discovery for the lingua franca, the
//!   mechanism §2.2 credits with overall program stability at SC98.

#![warn(missing_docs)]

pub mod dynbench;
pub mod methods;
pub mod selector;
pub mod sensor;
pub mod timeout;

pub use dynbench::DynamicBenchmark;
pub use methods::{
    standard_battery, AdaptiveMean, ExpSmoothing, Forecaster, LastValue, RunningMean, SlidingMean,
    SlidingMedian, TrimmedMean,
};
pub use selector::{ErrorMetric, Forecast, ForecasterSet};
pub use sensor::{nm, NwsForecastReply, NwsQuery, NwsReport, NwsSensor, NwsServer, SensorConfig};
pub use timeout::ForecastTimeout;
