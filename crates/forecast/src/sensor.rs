//! The Network Weather Service, as a pair of simulator processes.
//!
//! "The NWS collects performance measurements from Grid computing
//! resources (processors, networks, etc.) and uses these forecasting
//! techniques to predict short-term resource availability" (§2.2); the
//! Ramsey application's components "consult the Network Weather Service —
//! a distributed dynamic performance forecasting service" (§3.1, Figure 1).
//!
//! [`NwsSensor`] probes its peers over the lingua franca (round-trip
//! latency) and its own host (timed compute — effective CPU rate),
//! shipping each measurement to an [`NwsServer`], which keeps a
//! [`ForecasterSet`](crate::selector::ForecasterSet) per named resource and answers forecast queries from
//! any component.

use ew_proto::sim_net::{packet_from_event, send_packet};
use ew_proto::wire_struct;
use ew_proto::{mtype, DeadlineTimer, EventTag, Packet, RpcTracker, WireEncode};
use ew_sim::{CounterId, Ctx, Event, Process, ProcessId, SeriesId, SimDuration, SimTime, SpanId};

use crate::dynbench::DynamicBenchmark;
use crate::timeout::ForecastTimeout;

/// NWS message types.
pub mod nm {
    use super::mtype;
    /// Sensor ↔ sensor echo probe (request; response echoes the payload).
    pub const PROBE: u16 = mtype::NWS_BASE;
    /// Sensor → server measurement report (one-way).
    pub const REPORT: u16 = mtype::NWS_BASE + 1;
    /// Component → server forecast query (request).
    pub const QUERY: u16 = mtype::NWS_BASE + 2;
}

/// A measurement report body.
#[derive(Clone, Debug, PartialEq)]
pub struct NwsReport {
    /// Resource name, e.g. `"rtt.3.7"` or `"cpu.12"`.
    pub resource: String,
    /// Measured value (seconds for RTTs, ops/s for CPU rates).
    pub value: f64,
}

wire_struct!(NwsReport { resource, value });

/// A forecast query body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NwsQuery {
    /// Resource name to forecast.
    pub resource: String,
}

wire_struct!(NwsQuery { resource });

/// A forecast reply body.
#[derive(Clone, Debug, PartialEq)]
pub struct NwsForecastReply {
    /// Whether the resource has any history.
    pub found: bool,
    /// Predicted next value.
    pub value: f64,
    /// Winning forecasting method.
    pub method: String,
}

wire_struct!(NwsForecastReply {
    found,
    value,
    method
});

/// Sensor configuration.
#[derive(Clone, Debug)]
pub struct SensorConfig {
    /// Peer sensors to probe (round-trip measurements).
    pub peers: Vec<u64>,
    /// The NWS server to report to.
    pub server: u64,
    /// Probe period.
    pub interval: SimDuration,
    /// Probe payload size (bytes) — measures latency + a slice of
    /// bandwidth, like the NWS's small-message probes.
    pub probe_bytes: usize,
    /// Operations per CPU probe (timed compute chunk).
    pub cpu_probe_ops: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            peers: Vec::new(),
            server: 0,
            interval: SimDuration::from_secs(30),
            probe_bytes: 256,
            cpu_probe_ops: 1_000_000,
        }
    }
}

const TIMER_PROBE: u64 = 1;
/// Deadline-exact expiry wake-up (see [`DeadlineTimer`]); historically a
/// fixed 2 s poll tick.
const TIMER_EXPIRE: u64 = 2;
const CPU_PROBE_TAG: u64 = 0xC0;

/// Telemetry handles interned by a sensor on `Event::Started`. The
/// per-peer RTT series are known up front (the peer list is fixed at
/// configuration time), so even the dynamically-named `nws.rtt.<me>.<peer>`
/// series record through indices.
struct SensorTele {
    probes_lost: CounterId,
    probes_ok: CounterId,
    timeout_span: SpanId,
    rtt_series: Vec<(u64, SeriesId)>,
}

impl SensorTele {
    fn intern(ctx: &mut Ctx<'_>, peers: &[u64]) -> Self {
        let me = ctx.me().0;
        SensorTele {
            probes_lost: ctx.counter("nws.probes_lost"),
            probes_ok: ctx.counter("nws.probes_ok"),
            timeout_span: ctx.span("proto.timeout"),
            rtt_series: peers
                .iter()
                .map(|&peer| (peer, ctx.series(&format!("nws.rtt.{me}.{peer}"))))
                .collect(),
        }
    }

    fn rtt_series_for(&self, peer: u64) -> Option<SeriesId> {
        self.rtt_series
            .iter()
            .find(|&&(p, _)| p == peer)
            .map(|&(_, id)| id)
    }
}

/// The per-host NWS sensor process.
pub struct NwsSensor {
    cfg: SensorConfig,
    rpc: RpcTracker<u64>, // context = peer addr
    policy: ForecastTimeout,
    expiry: DeadlineTimer,
    cpu_probe_started: Option<SimTime>,
    tele: Option<SensorTele>,
    /// Network probes answered.
    pub probes_ok: u64,
    /// Network probes timed out.
    pub probes_lost: u64,
}

impl NwsSensor {
    /// A sensor with the given configuration.
    pub fn new(cfg: SensorConfig) -> Self {
        NwsSensor {
            cfg,
            rpc: RpcTracker::new(),
            policy: ForecastTimeout::wan_default(),
            expiry: DeadlineTimer::new(TIMER_EXPIRE),
            cpu_probe_started: None,
            tele: None,
            probes_ok: 0,
            probes_lost: 0,
        }
    }

    fn report(&self, ctx: &mut Ctx<'_>, resource: String, value: f64) {
        let body = NwsReport { resource, value };
        send_packet(
            ctx,
            ProcessId(self.cfg.server as u32),
            &Packet::oneway(nm::REPORT, body.to_wire()),
        );
    }

    fn probe_round(&mut self, ctx: &mut Ctx<'_>) {
        for &peer in &self.cfg.peers.clone() {
            let tag = EventTag {
                peer,
                mtype: nm::PROBE,
            };
            let corr = self.rpc.begin(tag, ctx.now(), &mut self.policy, peer);
            send_packet(
                ctx,
                ProcessId(peer as u32),
                &Packet::request(nm::PROBE, corr, vec![0u8; self.cfg.probe_bytes]),
            );
        }
        // CPU probe: a timed compute chunk measures the host's effective
        // guest-visible rate under current ambient load.
        if self.cpu_probe_started.is_none() {
            self.cpu_probe_started = Some(ctx.now());
            ctx.compute(self.cfg.cpu_probe_ops, CPU_PROBE_TAG);
        }
        ctx.set_timer(self.cfg.interval, TIMER_PROBE);
        self.expiry.update(ctx, self.rpc.next_deadline());
    }
}

impl Process for NwsSensor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match &ev {
            Event::Started => {
                self.tele = Some(SensorTele::intern(ctx, &self.cfg.peers));
                // Spread sensors out within the first interval. The expiry
                // timer is armed on demand by probe_round.
                let jitter = SimDuration::from_millis(ctx.rng().next_below(5_000));
                ctx.set_timer(jitter, TIMER_PROBE);
            }
            Event::Timer { tag } => match *tag {
                TIMER_PROBE => self.probe_round(ctx),
                TIMER_EXPIRE => {
                    self.expiry.note_fired();
                    let tele = self.tele.as_ref().expect("started");
                    let (probes_lost, timeout_span) = (tele.probes_lost, tele.timeout_span);
                    for pending in self.rpc.expire_traced(ctx, timeout_span, &mut self.policy) {
                        self.probes_lost += 1;
                        ctx.inc(probes_lost);
                        let _ = pending;
                    }
                    self.expiry.update(ctx, self.rpc.next_deadline());
                }
                _ => {}
            },
            Event::ComputeDone { tag, ops } if *tag == CPU_PROBE_TAG => {
                if let Some(started) = self.cpu_probe_started.take() {
                    let elapsed = ctx.now().since(started).as_secs_f64();
                    if elapsed > 0.0 {
                        let me = ctx.me().0;
                        self.report(ctx, format!("cpu.{me}"), *ops as f64 / elapsed);
                    }
                }
            }
            Event::Message { .. } => {
                if let Some(Ok((from, pkt))) = packet_from_event(&ev) {
                    if pkt.mtype != nm::PROBE {
                        return;
                    }
                    if pkt.is_request() {
                        // Echo the payload back.
                        send_packet(ctx, from, &Packet::response_to(&pkt, pkt.payload.clone()));
                    } else if pkt.is_response() {
                        if let Some((pending, rtt)) =
                            self.rpc.complete(pkt.corr_id, ctx.now(), &mut self.policy)
                        {
                            self.probes_ok += 1;
                            let tele = self.tele.as_ref().expect("started");
                            let me = ctx.me().0;
                            let peer = pending.context;
                            let secs = rtt.as_secs_f64();
                            ctx.inc(tele.probes_ok);
                            if let Some(series) = tele.rtt_series_for(peer) {
                                ctx.record(series, secs);
                            }
                            self.report(ctx, format!("rtt.{me}.{peer}"), secs);
                            // The completed request may have carried the
                            // earliest deadline; re-arm (or disarm) exactly.
                            self.expiry.update(ctx, self.rpc.next_deadline());
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// The NWS memory + forecaster service process.
pub struct NwsServer {
    streams: DynamicBenchmark<String>,
    reports_id: Option<CounterId>,
    /// Reports absorbed.
    pub reports: u64,
    /// Queries answered.
    pub queries: u64,
}

impl Default for NwsServer {
    fn default() -> Self {
        Self::new()
    }
}

impl NwsServer {
    /// An empty server.
    pub fn new() -> Self {
        NwsServer {
            streams: DynamicBenchmark::new(),
            reports_id: None,
            reports: 0,
            queries: 0,
        }
    }

    /// Driver-side forecast access (components use [`nm::QUERY`]).
    pub fn forecast(&self, resource: &str) -> Option<crate::selector::Forecast> {
        self.streams.forecast(&resource.to_string())
    }

    /// Number of distinct resources tracked.
    pub fn resource_count(&self) -> usize {
        self.streams.stream_count()
    }
}

impl Process for NwsServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let Some(Ok((from, pkt))) = packet_from_event(&ev) else {
            return;
        };
        match (pkt.mtype, pkt.is_request()) {
            (nm::REPORT, false) => {
                if let Ok(rep) = pkt.body::<NwsReport>() {
                    self.streams.observe(rep.resource, rep.value);
                    self.reports += 1;
                    // The server gets no Started event before the first
                    // report can arrive, so intern on first use.
                    let id = match self.reports_id {
                        Some(id) => id,
                        None => {
                            let id = ctx.counter("nws.reports");
                            self.reports_id = Some(id);
                            id
                        }
                    };
                    ctx.inc(id);
                }
            }
            (nm::QUERY, true) => {
                if let Ok(q) = pkt.body::<NwsQuery>() {
                    self.queries += 1;
                    let reply = match self.streams.forecast(&q.resource) {
                        Some(f) => NwsForecastReply {
                            found: true,
                            value: f.value,
                            method: f.method,
                        },
                        None => NwsForecastReply {
                            found: false,
                            value: 0.0,
                            method: String::new(),
                        },
                    };
                    send_packet(ctx, from, &Packet::response_to(&pkt, reply.to_wire()));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ew_sim::{HostSpec, HostTable, NetModel, Sim, SiteSpec, SpikeLoad};

    fn world() -> (Sim, Vec<ProcessId>, ProcessId) {
        let mut net = NetModel::new(0.05);
        let a = net.add_site(SiteSpec::simple(
            "a",
            SimDuration::from_millis(10),
            1.25e6,
            0.0,
        ));
        let b = net.add_site(SiteSpec {
            name: "b".into(),
            lan_latency: SimDuration::from_micros(200),
            lan_bandwidth: 12.5e6,
            wan_latency: SimDuration::from_millis(40),
            wan_bandwidth: 1.25e6,
            // Load spike on site b in the middle of the run.
            load: Box::new(SpikeLoad {
                start: SimTime::from_secs(600),
                end: SimTime::from_secs(1200),
                level: 0.8,
            }),
        });
        let mut hosts = HostTable::new();
        let ha = hosts.add(HostSpec::dedicated("ha", a, 1e8));
        let hb = hosts.add(HostSpec::dedicated("hb", b, 1e8));
        let hs = hosts.add(HostSpec::dedicated("server", a, 1e8));
        let mut sim = Sim::new(net, hosts, 17);
        let server = sim.spawn("nws-server", hs, Box::new(NwsServer::new()));
        // Sensors know each other (pids are sequential from the spawn
        // order, so precompute them).
        let sa_pid = ProcessId(server.0 + 1);
        let sb_pid = ProcessId(server.0 + 2);
        let sa = sim.spawn(
            "sensor-a",
            ha,
            Box::new(NwsSensor::new(SensorConfig {
                peers: vec![sb_pid.0 as u64],
                server: server.0 as u64,
                ..SensorConfig::default()
            })),
        );
        let sb = sim.spawn(
            "sensor-b",
            hb,
            Box::new(NwsSensor::new(SensorConfig {
                peers: vec![sa_pid.0 as u64],
                server: server.0 as u64,
                ..SensorConfig::default()
            })),
        );
        assert_eq!((sa, sb), (sa_pid, sb_pid));
        (sim, vec![sa, sb], server)
    }

    #[test]
    fn sensors_measure_and_server_forecasts_rtt() {
        let (mut sim, sensors, server) = world();
        sim.run_until(SimTime::from_secs(500));
        let (ok, lost) = sim
            .with_process::<NwsSensor, _>(sensors[0], |s| (s.probes_ok, s.probes_lost))
            .unwrap();
        assert!(ok > 10, "probes flowed: {ok}");
        assert_eq!(lost, 0, "calm network loses nothing");
        let resource = format!("rtt.{}.{}", sensors[0].0, sensors[1].0);
        let f = sim
            .with_process::<NwsServer, _>(server, |s| s.forecast(&resource))
            .unwrap()
            .expect("rtt stream exists");
        // Baseline one-way 10ms + 40ms plus bandwidth/jitter: RTT ≈ 0.1 s.
        assert!(
            (0.08..0.2).contains(&f.value),
            "forecast RTT {} out of range",
            f.value
        );
    }

    #[test]
    fn cpu_sensor_tracks_host_rate() {
        let (mut sim, sensors, server) = world();
        sim.run_until(SimTime::from_secs(500));
        let resource = format!("cpu.{}", sensors[0].0);
        let f = sim
            .with_process::<NwsServer, _>(server, |s| s.forecast(&resource))
            .unwrap()
            .expect("cpu stream exists");
        assert!(
            (0.5e8..1.1e8).contains(&f.value),
            "cpu forecast {:.3e} should approximate the 1e8 host",
            f.value
        );
    }

    #[test]
    fn forecasts_adapt_to_the_load_spike() {
        let (mut sim, sensors, server) = world();
        let resource = format!("rtt.{}.{}", sensors[0].0, sensors[1].0);
        sim.run_until(SimTime::from_secs(550));
        let calm = sim
            .with_process::<NwsServer, _>(server, |s| s.forecast(&resource))
            .unwrap()
            .expect("stream exists")
            .value;
        // Mid-spike: site b's 0.8 load multiplies its latency 5x.
        sim.run_until(SimTime::from_secs(1150));
        let loaded = sim
            .with_process::<NwsServer, _>(server, |s| s.forecast(&resource))
            .unwrap()
            .unwrap()
            .value;
        assert!(
            loaded > 2.0 * calm,
            "forecast must track the spike: {calm:.3} -> {loaded:.3}"
        );
        // After the spike the forecast comes back down.
        sim.run_until(SimTime::from_secs(1800));
        let recovered = sim
            .with_process::<NwsServer, _>(server, |s| s.forecast(&resource))
            .unwrap()
            .unwrap()
            .value;
        assert!(
            recovered < loaded / 2.0,
            "forecast must recover: {loaded:.3} -> {recovered:.3}"
        );
    }

    #[test]
    fn query_interface_answers_components() {
        struct Querier {
            server: ProcessId,
            resource: String,
            pub reply: Option<NwsForecastReply>,
        }
        impl Process for Querier {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                match &ev {
                    Event::Started => ctx.set_timer(SimDuration::from_secs(400), 1),
                    Event::Timer { .. } => {
                        let q = NwsQuery {
                            resource: self.resource.clone(),
                        };
                        send_packet(
                            ctx,
                            self.server,
                            &Packet::request(nm::QUERY, 1, q.to_wire()),
                        );
                    }
                    _ => {
                        if let Some(Ok((_, pkt))) = packet_from_event(&ev) {
                            if let Ok(r) = pkt.body::<NwsForecastReply>() {
                                self.reply = Some(r);
                            }
                        }
                    }
                }
            }
        }
        let (mut sim, sensors, server) = world();
        let resource = format!("rtt.{}.{}", sensors[0].0, sensors[1].0);
        // Reuse a service host for the querier.
        let host = sim.hosts().iter().next().unwrap().0;
        let q = sim.spawn(
            "querier",
            host,
            Box::new(Querier {
                server,
                resource,
                reply: None,
            }),
        );
        sim.run_until(SimTime::from_secs(500));
        let reply = sim
            .with_process::<Querier, _>(q, |q| q.reply.clone())
            .unwrap()
            .expect("query answered");
        assert!(reply.found);
        assert!(reply.value > 0.0);
        assert!(!reply.method.is_empty());
        // Unknown resources answer found = false.
        let (mut sim2, _, server2) = world();
        let host2 = sim2.hosts().iter().next().unwrap().0;
        let q2 = sim2.spawn(
            "querier2",
            host2,
            Box::new(Querier {
                server: server2,
                resource: "rtt.9999.9999".into(),
                reply: None,
            }),
        );
        sim2.run_until(SimTime::from_secs(500));
        let reply2 = sim2
            .with_process::<Querier, _>(q2, |q| q.reply.clone())
            .unwrap()
            .expect("query answered");
        assert!(!reply2.found);
    }
}
