//! Property tests for the forecasting subsystem: the battery must stay
//! well-behaved under arbitrary measurement streams — it runs unattended
//! inside every component of a long-lived Grid application.

use proptest::prelude::*;

use ew_forecast::{standard_battery, ErrorMetric, ForecastTimeout, ForecasterSet};
use ew_proto::{EventTag, TimeoutPolicy};
use ew_sim::SimDuration;

fn finite_series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e9f64..1e9, 1..200)
}

proptest! {
    #[test]
    fn every_method_survives_arbitrary_finite_input(xs in finite_series()) {
        for mut m in standard_battery() {
            for &x in &xs {
                m.update(x);
            }
            let p = m.predict().expect("non-empty history predicts");
            prop_assert!(p.is_finite(), "{} produced {p}", m.name());
        }
    }

    #[test]
    fn selector_prediction_is_finite_and_mae_nonnegative(xs in finite_series()) {
        let mut set = ForecasterSet::standard();
        for &x in &xs {
            set.update(x);
        }
        let f = set.predict().expect("predicts after input");
        prop_assert!(f.value.is_finite());
        if let Some(mae) = f.mae {
            prop_assert!(mae >= 0.0);
        }
        for (_, score) in set.leaderboard() {
            prop_assert!(score >= 0.0 || score.is_infinite());
        }
    }

    #[test]
    fn selector_never_loses_to_worst_method_by_much(
        xs in proptest::collection::vec(0.0f64..1000.0, 30..150)
    ) {
        // The selected forecast always comes from the method with the best
        // score so far, so its cumulative MAE is within the battery's span.
        let mut set = ForecasterSet::new(standard_battery(), ErrorMetric::Mae);
        let mut chosen_err = 0.0;
        let mut n = 0u32;
        for &x in &xs {
            if let Some(f) = set.predict() {
                chosen_err += (f.value - x).abs();
                n += 1;
            }
            set.update(x);
        }
        if n > 10 {
            // Every method is an average/median/last of history, so all
            // predictions live inside the data range and the selection's
            // online MAE is bounded by it. (A tight regret bound does not
            // hold for follow-the-leader selection; the NWS relies on the
            // empirical behaviour, not a worst-case guarantee.)
            prop_assert!(
                chosen_err / n as f64 <= 1000.0 + 1e-9,
                "online MAE {} escaped the data range",
                chosen_err / n as f64
            );
            let lead = set.leaderboard();
            prop_assert!(lead.iter().any(|(_, s)| s.is_finite()));
        }
    }

    #[test]
    fn timeouts_always_within_clamps(
        rtts in proptest::collection::vec(0.0f64..1e5, 0..100),
        expiries in 0u32..20,
    ) {
        let mut ft = ForecastTimeout::wan_default();
        let tag = EventTag { peer: 1, mtype: 7 };
        for &r in &rtts {
            ft.observe_rtt(tag, SimDuration::from_secs_f64(r));
        }
        for _ in 0..expiries {
            ft.observe_timeout(tag);
        }
        let t = ft.timeout_for(tag);
        prop_assert!(t >= ft.min, "{t:?} below clamp");
        prop_assert!(t <= ft.max, "{t:?} above clamp");
    }
}
