//! Generic work envelopes — the wire types every workload shares.
//!
//! A [`WorkUnit`] tells a computational client what to do: two
//! application-defined scalar arguments, a variant selector, an RNG seed,
//! a step budget, and an opaque byte payload (resume state, task inputs —
//! whatever the workload needs to ship). A [`WorkResult`] reports back
//! steps, operation counts, a progress value (lower is better, like the
//! Ramsey objective), an artifact blob (e.g. a verified counter-example),
//! and a carry blob for migrating the unit to another client.
//!
//! The field layout is deliberately byte-identical to the original
//! Ramsey-shaped `WorkUnit`/`WorkResult` (a `RamseyProblem { k, n }`
//! encodes exactly as two inline `u32`s), so extracting the envelope from
//! the application changed nothing on the wire — the determinism tests'
//! golden hashes and every committed figure artifact prove it.

#[cfg(test)]
use ew_proto::wire::{WireDecode, WireEncode};
use ew_proto::wire_struct;

/// One schedulable unit of application work.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkUnit {
    /// Unique id (issued by a scheduler).
    pub id: u64,
    /// First workload argument (Ramsey: clique size `k`; DAG: task
    /// index; faas: invocation index).
    pub arg0: u32,
    /// Second workload argument (Ramsey: vertex count `n`; DAG: task
    /// layer; faas: 1 when the invocation pays a cold start).
    pub arg1: u32,
    /// Variant selector (Ramsey: heuristic kind — 0 greedy, 1 tabu,
    /// 2 annealing).
    pub variant: u8,
    /// RNG seed for whatever randomized computation the unit performs.
    pub seed: u64,
    /// Steps to run before reporting back.
    pub step_budget: u64,
    /// Opaque workload payload; for migratable work this is the resume
    /// state from the previous holder (empty = fresh start).
    pub payload: Vec<u8>,
}

wire_struct!(WorkUnit {
    id,
    arg0,
    arg1,
    variant,
    seed,
    step_budget,
    payload
});

/// A client's report after exhausting a unit's budget (or solving it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkResult {
    /// The unit this answers.
    pub unit_id: u64,
    /// Steps actually executed.
    pub steps: u64,
    /// Useful integer operations expended (the paper's conservative count).
    pub ops: u64,
    /// Best objective value reached (lower is better; Ramsey: the
    /// monochromatic-clique count).
    pub progress: u64,
    /// Serialized artifact, if the unit produced one (Ramsey: a verified
    /// counter-example ready for the persistent state service).
    pub artifact: Vec<u8>,
    /// Resume state for migrating the unit to another client (Ramsey:
    /// the final coloring).
    pub carry: Vec<u8>,
}

wire_struct!(WorkResult {
    unit_id,
    steps,
    ops,
    progress,
    artifact,
    carry
});

/// Kernel counters a real execution reports alongside its result.
///
/// The names are generic (cache, workspace) so non-Ramsey workloads can
/// reuse them; the sched client maps them onto the `ramsey.*` telemetry
/// series unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Incremental-cache lookups served.
    pub cache_lookups: u64,
    /// Objective evaluations that bypassed the cache.
    pub cache_misses: u64,
    /// Incremental cache mutations applied.
    pub cache_mutations: u64,
    /// Cache entries rebuilt from scratch.
    pub cache_refreshed: u64,
    /// Scratch-arena bytes held at the end of the run.
    pub workspace_bytes: u64,
    /// Cache bytes held at the end of the run.
    pub cache_bytes: u64,
}

impl ExecStats {
    /// Fraction of objective evaluations served by the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_lookups + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_lookups as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_unit_wire_round_trip() {
        let u = WorkUnit {
            id: 77,
            arg0: 5,
            arg1: 43,
            variant: 1,
            seed: 0xDEAD,
            step_budget: 1000,
            payload: vec![1, 2, 3],
        };
        let bytes = u.to_wire();
        assert_eq!(WorkUnit::from_wire(&bytes).unwrap(), u);
    }

    #[test]
    fn work_result_wire_round_trip() {
        let r = WorkResult {
            unit_id: 77,
            steps: 500,
            ops: 123456,
            progress: 3,
            artifact: vec![],
            carry: vec![9, 9],
        };
        assert_eq!(WorkResult::from_wire(&r.to_wire()).unwrap(), r);
    }

    // The pre-redesign Ramsey-shaped wire layout, reproduced literally.
    // The envelope must encode byte-for-byte the same, or every golden
    // event-order hash and committed figure artifact changes.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct LegacyProblem {
        k: u32,
        n: u32,
    }
    wire_struct!(LegacyProblem { k, n });

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct LegacyUnit {
        id: u64,
        problem: LegacyProblem,
        heuristic: u8,
        seed: u64,
        step_budget: u64,
        start_graph: Vec<u8>,
    }
    wire_struct!(LegacyUnit {
        id,
        problem,
        heuristic,
        seed,
        step_budget,
        start_graph
    });

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct LegacyResult {
        unit_id: u64,
        steps: u64,
        ops: u64,
        best_count: u64,
        counter_example: Vec<u8>,
        final_graph: Vec<u8>,
    }
    wire_struct!(LegacyResult {
        unit_id,
        steps,
        ops,
        best_count,
        counter_example,
        final_graph
    });

    #[test]
    fn unit_envelope_is_byte_identical_to_the_legacy_layout() {
        let legacy = LegacyUnit {
            id: 42,
            problem: LegacyProblem { k: 5, n: 43 },
            heuristic: 2,
            seed: 0xBEEF,
            step_budget: 6000,
            start_graph: vec![0xA5; 115],
        };
        let generic = WorkUnit {
            id: 42,
            arg0: 5,
            arg1: 43,
            variant: 2,
            seed: 0xBEEF,
            step_budget: 6000,
            payload: vec![0xA5; 115],
        };
        assert_eq!(legacy.to_wire(), generic.to_wire());
        // Cross-decode both ways.
        assert_eq!(WorkUnit::from_wire(&legacy.to_wire()).unwrap(), generic);
        assert_eq!(LegacyUnit::from_wire(&generic.to_wire()).unwrap(), legacy);
    }

    #[test]
    fn result_envelope_is_byte_identical_to_the_legacy_layout() {
        let legacy = LegacyResult {
            unit_id: 7,
            steps: 900,
            ops: 1_000_000,
            best_count: 4,
            counter_example: vec![1, 2],
            final_graph: vec![3, 4, 5],
        };
        let generic = WorkResult {
            unit_id: 7,
            steps: 900,
            ops: 1_000_000,
            progress: 4,
            artifact: vec![1, 2],
            carry: vec![3, 4, 5],
        };
        assert_eq!(legacy.to_wire(), generic.to_wire());
        assert_eq!(WorkResult::from_wire(&legacy.to_wire()).unwrap(), generic);
        assert_eq!(LegacyResult::from_wire(&generic.to_wire()).unwrap(), legacy);
    }

    #[test]
    fn exec_stats_hit_rate() {
        assert_eq!(ExecStats::default().hit_rate(), 0.0);
        let s = ExecStats {
            cache_lookups: 3,
            cache_misses: 1,
            ..ExecStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    mod prop {
        use super::*;
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;

        proptest! {
            // The satellite coverage: arbitrary opaque payloads survive
            // the lingua-franca wire round trip for both envelopes.
            #[test]
            fn unit_round_trips_any_payload(
                id in any::<u64>(),
                arg0 in any::<u32>(),
                arg1 in any::<u32>(),
                variant in any::<u8>(),
                seed in any::<u64>(),
                step_budget in any::<u64>(),
                payload in pvec(any::<u8>(), 0..256),
            ) {
                let u = WorkUnit { id, arg0, arg1, variant, seed, step_budget, payload };
                prop_assert_eq!(WorkUnit::from_wire(&u.to_wire()).unwrap(), u);
            }

            #[test]
            fn result_round_trips_any_blobs(
                unit_id in any::<u64>(),
                steps in any::<u64>(),
                ops in any::<u64>(),
                progress in any::<u64>(),
                artifact in pvec(any::<u8>(), 0..256),
                carry in pvec(any::<u8>(), 0..256),
            ) {
                let r = WorkResult { unit_id, steps, ops, progress, artifact, carry };
                prop_assert_eq!(WorkResult::from_wire(&r.to_wire()).unwrap(), r);
            }
        }
    }
}
