//! The Ramsey counter-example search as a [`Workload`] — the application
//! that won the SC98 HPC Challenge, now just the first plugin.
//!
//! Unit generation, budget scaling, heuristic switching, migration and
//! artifact storage reproduce the pre-trait scheduler/client behaviour
//! formula for formula, so every figure, chaos and bench artifact stays
//! byte-identical.

use ew_ramsey::{
    heuristic_by_kind, run_search, verify_counter_example, ColoredGraph, KernelStats, OpsCounter,
    RamseyProblem, SearchState, Verification,
};
use ew_sim::{SimTime, Xoshiro256};
use ew_state::Validator;

use crate::unit::{ExecStats, WorkResult, WorkUnit};
use crate::Workload;

/// Configuration for the Ramsey search workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RamseyConfig {
    /// Problem instance: find a counter-example for `R(k, k) > n`.
    pub problem: RamseyProblem,
    /// Heuristic kinds to rotate through when issuing fresh units (and
    /// to switch stalled clients between).
    pub heuristic_mix: Vec<u8>,
}

impl Default for RamseyConfig {
    fn default() -> Self {
        RamseyConfig {
            // The SC98 target: R(5) on 43 vertices.
            problem: RamseyProblem { k: 5, n: 43 },
            heuristic_mix: vec![0, 1, 2],
        }
    }
}

/// The Ramsey search: an infinite supply of seeded random restarts over
/// the configured problem, rotating heuristics per unit id.
#[derive(Debug)]
pub struct RamseyWorkload {
    cfg: RamseyConfig,
    salt: u64,
}

impl RamseyWorkload {
    /// Build a workload instance; `salt` diversifies unit seeds between
    /// scheduler replicas exactly as the old `seed_salt` did.
    pub fn new(cfg: RamseyConfig, salt: u64) -> Self {
        RamseyWorkload { cfg, salt }
    }
}

impl Workload for RamseyWorkload {
    fn name(&self) -> &'static str {
        "ramsey"
    }

    fn generate(
        &mut self,
        id: u64,
        _now: SimTime,
        _client: u64,
        step_budget: u64,
    ) -> Option<WorkUnit> {
        let mix = &self.cfg.heuristic_mix;
        let variant = mix
            .get((id as usize) % mix.len().max(1))
            .copied()
            .unwrap_or(0);
        Some(WorkUnit {
            id,
            arg0: self.cfg.problem.k,
            arg1: self.cfg.problem.n,
            variant,
            seed: self
                .salt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id),
            step_budget,
            payload: Vec::new(),
        })
    }

    fn rate_scaled_budgets(&self) -> bool {
        true
    }

    fn next_variant(&self, current: u8) -> Option<u8> {
        let mix = &self.cfg.heuristic_mix;
        if mix.is_empty() {
            return None;
        }
        let pos = mix.iter().position(|&h| h == current).unwrap_or(0);
        Some(mix[(pos + 1) % mix.len()])
    }

    fn execute(&self, unit: &WorkUnit) -> (WorkResult, ExecStats) {
        let (result, stats) = execute_unit(unit);
        (result, exec_stats(&stats))
    }

    fn artifact_key(&self, unit: &WorkUnit) -> String {
        format!("ramsey/best/{}", unit.arg0)
    }
}

/// Map the Ramsey kernel counters onto the generic [`ExecStats`].
fn exec_stats(stats: &KernelStats) -> ExecStats {
    ExecStats {
        cache_lookups: stats.table_lookups,
        cache_misses: stats.naive_evals,
        cache_mutations: stats.table_flips,
        cache_refreshed: stats.entries_refreshed,
        workspace_bytes: stats.workspace_bytes,
        cache_bytes: stats.table_bytes,
    }
}

/// Execute a Ramsey work unit to completion on the calling thread. This
/// is the real computation the simulated clients model and the live
/// examples run. Runs with the incremental delta table — which produces
/// the exact move sequence and results of the naive kernel (proptested),
/// only faster — and reports the kernel counters for `ramsey.*`
/// telemetry.
pub fn execute_unit(unit: &WorkUnit) -> (WorkResult, KernelStats) {
    let mut rng = Xoshiro256::seed_from_u64(unit.seed);
    let start = if unit.payload.is_empty() {
        ColoredGraph::random(unit.arg1 as usize, &mut rng)
    } else {
        ColoredGraph::from_bytes(&unit.payload)
            .unwrap_or_else(|| ColoredGraph::random(unit.arg1 as usize, &mut rng))
    };
    let mut state = SearchState::new_incremental(start, unit.arg0 as usize);
    let mut heuristic = heuristic_by_kind(unit.variant);
    let report = run_search(&mut state, heuristic.as_mut(), &mut rng, unit.step_budget);
    let result = WorkResult {
        unit_id: unit.id,
        steps: report.steps,
        ops: report.ops,
        progress: report.best_count,
        artifact: report
            .counter_example
            .map(|g| g.to_bytes())
            .unwrap_or_default(),
        carry: state.graph().to_bytes(),
    };
    (result, state.kernel_stats())
}

/// The persistent-state validator for Ramsey artifacts: re-count the
/// cliques before accepting a claimed counter-example (§3.1.2's
/// "state the application trusts").
pub fn ramsey_validator() -> Validator {
    Box::new(|key: &str, bytes: &[u8]| {
        let k: usize = key
            .rsplit('/')
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("key {key:?} does not end in a clique size"))?;
        let g = ColoredGraph::from_bytes(bytes).ok_or("value is not a colored graph")?;
        let mut ops = OpsCounter::new();
        match verify_counter_example(&g, k, &mut ops) {
            Verification::Valid { .. } => Ok(()),
            Verification::Invalid { violations } => Err(format!(
                "graph contains {violations} monochromatic {k}-cliques"
            )),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(k: u32, n: u32, variant: u8, steps: u64) -> WorkUnit {
        WorkUnit {
            id: 1,
            arg0: k,
            arg1: n,
            variant,
            seed: 99,
            step_budget: steps,
            payload: Vec::new(),
        }
    }

    #[test]
    fn executing_easy_unit_finds_verified_counter_example() {
        let (r, stats) = execute_unit(&unit(3, 5, 1, 1000));
        assert!(!r.artifact.is_empty(), "R(3)>5 witness should be found");
        let g = ColoredGraph::from_bytes(&r.artifact).unwrap();
        let mut ops = OpsCounter::new();
        assert!(matches!(
            verify_counter_example(&g, 3, &mut ops),
            Verification::Valid { n: 5, .. }
        ));
        assert!(r.ops > 0);
        assert!(r.steps <= 1000);
        assert!(stats.table_lookups > 0);
    }

    #[test]
    fn budget_exhaustion_reports_partial_progress() {
        // 2 steps on a hard instance: no solution, but progress fields set.
        let (r, _) = execute_unit(&unit(5, 43, 0, 2));
        assert!(r.artifact.is_empty());
        assert_eq!(r.steps, 2);
        assert!(r.progress > 0);
        assert!(!r.carry.is_empty());
        // The final graph is resumable.
        assert!(ColoredGraph::from_bytes(&r.carry).is_some());
    }

    #[test]
    fn migrated_work_resumes_from_shipped_graph() {
        let (first, _) = execute_unit(&unit(4, 17, 1, 50));
        let resumed = WorkUnit {
            id: 2,
            arg0: 4,
            arg1: 17,
            variant: 1,
            seed: 123,
            step_budget: 1,
            payload: first.carry.clone(),
        };
        let (r, _) = execute_unit(&resumed);
        // One step from the shipped graph: the state was honoured (the
        // final graph differs from a fresh random start with seed 123).
        let (fresh, _) = execute_unit(&WorkUnit {
            payload: Vec::new(),
            ..resumed.clone()
        });
        assert_ne!(r.carry, fresh.carry);
    }

    #[test]
    fn corrupt_start_graph_falls_back_to_seeded_random() {
        let bad = WorkUnit {
            payload: vec![0xFF; 3],
            ..unit(3, 5, 0, 10)
        };
        // Must not panic; falls back to random start.
        let (r, _) = execute_unit(&bad);
        assert!(!r.carry.is_empty());
    }

    #[test]
    fn deterministic_execution() {
        let a = execute_unit(&unit(4, 17, 2, 200));
        let b = execute_unit(&unit(4, 17, 2, 200));
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn generation_matches_the_legacy_scheduler_formulas() {
        let mut w = RamseyWorkload::new(RamseyConfig::default(), 3);
        let u = w.generate(10, SimTime::ZERO, 1, 2000).unwrap();
        assert_eq!(u.arg0, 5);
        assert_eq!(u.arg1, 43);
        // mix[(10) % 3] = mix[1] = 1.
        assert_eq!(u.variant, 1);
        assert_eq!(
            u.seed,
            3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(10)
        );
        assert_eq!(u.step_budget, 2000);
        assert!(u.payload.is_empty());
        // Heuristic rotation steps through the mix in order.
        assert_eq!(w.next_variant(0), Some(1));
        assert_eq!(w.next_variant(1), Some(2));
        assert_eq!(w.next_variant(2), Some(0));
        // Unknown current variant restarts the rotation, like the old
        // `position().unwrap_or(0)`.
        assert_eq!(w.next_variant(9), Some(1));
        assert!(w.rate_scaled_budgets());
        assert_eq!(w.artifact_key(&u), "ramsey/best/5");
    }

    #[test]
    fn validator_accepts_real_witness_and_rejects_garbage() {
        let v = ramsey_validator();
        // Paley(17) is a genuine R(4) > 17 witness.
        let witness = ColoredGraph::paley(17);
        assert!(v("ramsey/best/4", &witness.to_bytes()).is_ok());
        assert!(v("ramsey/best/4", &[0xFF, 0x01]).is_err());
        assert!(v("ramsey/best/oops", &witness.to_bytes()).is_err());
    }
}
