//! A DAG/workflow workload: tasks with dependency edges, issued in
//! critical-path order, completion gated on predecessors.
//!
//! The task graph is generated deterministically from a seed: `tasks`
//! nodes spread over `layers` layers, each non-root task depending on up
//! to `fan_in` tasks from the previous layer. A task becomes *ready* only
//! once every predecessor has completed; among ready tasks the scheduler
//! always issues the one with the longest remaining critical path (the
//! classic HEFT-style upward rank — see dslab-dag for the idiom). Lost
//! units (client died, result never arrived) are reissued after
//! `reissue_after`, so chaos campaigns can kill hosts without wedging the
//! workflow.
//!
//! Determinism obligations: the graph depends only on `(seed, salt)`;
//! `generate` scans plain `Vec`s (never a hash map) so unit issue order
//! is a pure function of the call sequence.

use ew_sim::{SimDuration, SimTime, Xoshiro256};
use std::collections::HashMap;

use crate::unit::{WorkResult, WorkUnit};
use crate::Workload;

/// Configuration for the DAG workflow workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagConfig {
    /// Total number of tasks in the workflow.
    pub tasks: usize,
    /// Number of dependency layers the tasks are spread over.
    pub layers: usize,
    /// Maximum predecessors per task (drawn from the previous layer).
    pub fan_in: usize,
    /// Smallest per-task step cost.
    pub min_steps: u64,
    /// Largest per-task step cost.
    pub max_steps: u64,
    /// Seed for the graph shape and task costs.
    pub seed: u64,
    /// Reissue a granted-but-unanswered task after this long.
    pub reissue_after: SimDuration,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig {
            tasks: 600,
            layers: 20,
            fan_in: 3,
            min_steps: 1_500,
            max_steps: 6_000,
            seed: 1998,
            reissue_after: SimDuration::from_secs(180),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    Pending,
    Issued { at: SimTime },
    Done,
}

struct Task {
    layer: usize,
    steps: u64,
    preds: Vec<usize>,
    /// Longest chain of step costs from this task to a sink (inclusive).
    critical_path: u64,
    state: TaskState,
}

/// A deterministic workflow instance; see the module docs.
pub struct DagWorkload {
    cfg: DagConfig,
    salt: u64,
    tasks: Vec<Task>,
    /// Unit id → task index, for completing tasks on result arrival.
    issued_units: HashMap<u64, usize>,
    done: usize,
}

impl DagWorkload {
    /// Build the task graph from `(cfg.seed, salt)`.
    pub fn new(cfg: DagConfig, salt: u64) -> Self {
        let mut rng =
            Xoshiro256::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = cfg.tasks.max(1);
        let layers = cfg.layers.clamp(1, n);
        let mut tasks: Vec<Task> = Vec::with_capacity(n);
        // Layer of task i: monotone in i, so predecessors always have a
        // smaller index — the critical-path pass below exploits this.
        let layer_of = |i: usize| i * layers / n;
        let mut layer_start = vec![0usize; layers + 1];
        for i in 0..n {
            layer_start[layer_of(i) + 1] = i + 1;
        }
        for l in 1..=layers {
            layer_start[l] = layer_start[l].max(layer_start[l - 1]);
        }
        for i in 0..n {
            let layer = layer_of(i);
            let steps = rng.range_inclusive(cfg.min_steps.min(cfg.max_steps), cfg.max_steps);
            let mut preds = Vec::new();
            if layer > 0 {
                let (lo, hi) = (layer_start[layer - 1], layer_start[layer]);
                let prev_len = hi - lo;
                let want = cfg.fan_in.clamp(1, prev_len);
                for _ in 0..want {
                    let p = lo + rng.next_below(prev_len as u64) as usize;
                    if !preds.contains(&p) {
                        preds.push(p);
                    }
                }
                preds.sort_unstable();
            }
            tasks.push(Task {
                layer,
                steps,
                preds,
                critical_path: 0,
                state: TaskState::Pending,
            });
        }
        // Upward rank: cp(i) = steps(i) + max over successors cp(s).
        // Predecessor indices are strictly smaller, so one reverse pass
        // suffices: push each task's rank up into its predecessors.
        for i in (0..n).rev() {
            let cp = tasks[i].critical_path + tasks[i].steps;
            tasks[i].critical_path = cp;
            for p in tasks[i].preds.clone() {
                tasks[p].critical_path = tasks[p].critical_path.max(cp);
            }
        }
        DagWorkload {
            cfg,
            salt,
            tasks,
            issued_units: HashMap::new(),
            done: 0,
        }
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.done
    }

    /// Total number of tasks in the workflow.
    pub fn total(&self) -> usize {
        self.tasks.len()
    }

    fn issue(&mut self, task: usize, id: u64, now: SimTime) -> WorkUnit {
        self.tasks[task].state = TaskState::Issued { at: now };
        self.issued_units.insert(id, task);
        let t = &self.tasks[task];
        WorkUnit {
            id,
            arg0: task as u32,
            arg1: t.layer as u32,
            variant: 0,
            seed: (self.cfg.seed ^ self.salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id),
            step_budget: t.steps,
            payload: Vec::new(),
        }
    }
}

impl Workload for DagWorkload {
    fn name(&self) -> &'static str {
        "dag"
    }

    fn generate(
        &mut self,
        id: u64,
        now: SimTime,
        _client: u64,
        _step_budget: u64,
    ) -> Option<WorkUnit> {
        // Ready = pending with every predecessor done. Pick the longest
        // remaining critical path; break ties on the lower task index.
        let mut best: Option<(u64, usize)> = None;
        for (i, t) in self.tasks.iter().enumerate() {
            if t.state != TaskState::Pending {
                continue;
            }
            if !t
                .preds
                .iter()
                .all(|&p| self.tasks[p].state == TaskState::Done)
            {
                continue;
            }
            let better = match best {
                None => true,
                Some((cp, _)) => t.critical_path > cp,
            };
            if better {
                best = Some((t.critical_path, i));
            }
        }
        if let Some((_, task)) = best {
            return Some(self.issue(task, id, now));
        }
        // Nothing newly ready: reissue the longest-outstanding unit whose
        // grant has aged past the reissue window (its holder likely died).
        let mut stale: Option<(SimTime, usize)> = None;
        for (i, t) in self.tasks.iter().enumerate() {
            if let TaskState::Issued { at } = t.state {
                if now.since(at) >= self.cfg.reissue_after {
                    let older = match stale {
                        None => true,
                        Some((t0, _)) => at < t0,
                    };
                    if older {
                        stale = Some((at, i));
                    }
                }
            }
        }
        let (_, task) = stale?;
        Some(self.issue(task, id, now))
    }

    fn remake(&self, unit: &WorkUnit, variant: u8, carry: Vec<u8>, _step_budget: u64) -> WorkUnit {
        // The migrated task keeps its own cost-model budget: DAG budgets
        // are the task size, not a scheduler allotment.
        WorkUnit {
            id: unit.id,
            arg0: unit.arg0,
            arg1: unit.arg1,
            variant,
            seed: unit.id ^ 0xABCD,
            step_budget: unit.step_budget,
            payload: carry,
        }
    }

    fn on_result(&mut self, result: &WorkResult) {
        if let Some(task) = self.issued_units.get(&result.unit_id).copied() {
            if self.tasks[task].state != TaskState::Done {
                self.tasks[task].state = TaskState::Done;
                self.done += 1;
            }
        }
    }

    fn progress(&self) -> Option<f64> {
        Some(self.done as f64 / self.tasks.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DagConfig {
        DagConfig {
            tasks: 30,
            layers: 5,
            fan_in: 2,
            min_steps: 100,
            max_steps: 200,
            seed: 7,
            reissue_after: SimDuration::from_secs(60),
        }
    }

    fn drain(w: &mut DagWorkload) -> Vec<WorkUnit> {
        let mut id = 0;
        let mut units = Vec::new();
        loop {
            match w.generate(id, SimTime::ZERO, 1, 0) {
                Some(u) => {
                    let r = WorkResult {
                        unit_id: u.id,
                        ..WorkResult::default()
                    };
                    w.on_result(&r);
                    units.push(u);
                    id += 1;
                }
                None => return units,
            }
        }
    }

    #[test]
    fn graph_is_layered_and_deterministic() {
        let a = DagWorkload::new(small(), 0);
        let b = DagWorkload::new(small(), 0);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.preds, y.preds);
            assert_eq!(x.steps, y.steps);
            assert_eq!(x.critical_path, y.critical_path);
        }
        // Every predecessor sits exactly one layer up.
        for t in &a.tasks {
            for &p in &t.preds {
                assert_eq!(a.tasks[p].layer + 1, t.layer);
            }
        }
        // A different salt reshapes the instance.
        let c = DagWorkload::new(small(), 1);
        assert!(a
            .tasks
            .iter()
            .zip(&c.tasks)
            .any(|(x, y)| x.steps != y.steps));
    }

    #[test]
    fn completion_is_gated_on_predecessors() {
        let mut w = DagWorkload::new(small(), 0);
        let units = drain(&mut w);
        assert_eq!(units.len(), 30, "every task ran exactly once");
        assert_eq!(w.completed(), 30);
        assert_eq!(w.progress(), Some(1.0));
        // Completing in issue order must never issue a task before all of
        // its predecessors: check issue positions.
        let mut pos = vec![0usize; 30];
        for (i, u) in units.iter().enumerate() {
            pos[u.arg0 as usize] = i;
        }
        for (i, t) in w.tasks.iter().enumerate() {
            for &p in &t.preds {
                assert!(pos[p] < pos[i], "task {i} issued before pred {p}");
            }
        }
    }

    #[test]
    fn ready_tasks_come_out_in_critical_path_order() {
        let mut w = DagWorkload::new(small(), 0);
        // All of layer 0 is ready up front; issue (without completing)
        // and watch the critical path decrease monotonically.
        let mut last = u64::MAX;
        let mut id = 0;
        while let Some(u) = w.generate(id, SimTime::ZERO, 1, 0) {
            let cp = w.tasks[u.arg0 as usize].critical_path;
            assert!(cp <= last, "critical path must not increase");
            last = cp;
            id += 1;
        }
        // Only layer 0 could be issued — nothing completed.
        assert!(w.issued_units.values().all(|&t| w.tasks[t].layer == 0));
    }

    #[test]
    fn lost_units_are_reissued_after_the_window() {
        let mut w = DagWorkload::new(small(), 0);
        let first = w.generate(0, SimTime::ZERO, 1, 0).unwrap();
        // Too early: the unit is outstanding, other roots still pending.
        // Drain the remaining ready tasks without completing any.
        let mut id = 1;
        while w.generate(id, SimTime::from_secs(1), 1, 0).is_some() {
            id += 1;
        }
        assert!(w.generate(id, SimTime::from_secs(30), 1, 0).is_none());
        // Past the reissue window the oldest grant comes back out.
        let re = w.generate(id, SimTime::from_secs(61), 1, 0).unwrap();
        assert_eq!(re.arg0, first.arg0);
        assert_ne!(re.id, first.id);
        // Either grant's result completes the task exactly once.
        w.on_result(&WorkResult {
            unit_id: first.id,
            ..WorkResult::default()
        });
        w.on_result(&WorkResult {
            unit_id: re.id,
            ..WorkResult::default()
        });
        assert_eq!(w.completed(), 1);
    }
}
