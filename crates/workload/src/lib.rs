//! # ew-workload — the application contract of the EveryWare toolkit
//!
//! The paper's claim is that EveryWare is a *toolkit*: the Ramsey search
//! is just the application that happened to win the SC98 HPC Challenge.
//! This crate makes that claim real again. The [`Workload`] trait is the
//! entire application-facing API of the scheduling plane — unit
//! generation, execution cost, migration, stall handling, result
//! verification, and a progress metric — and the schedulers, clients,
//! state manager, and figures deployments program against it, never
//! against Ramsey types.
//!
//! Three applications ship here:
//!
//! * [`ramsey::RamseyWorkload`] — the SC98 counter-example search,
//!   reproducing the pre-trait behaviour byte for byte;
//! * [`dag::DagWorkload`] — a workflow of dependency-gated tasks, issued
//!   in critical-path order;
//! * [`faas::FaasWorkload`] — bursty serverless invocations with
//!   cold-start costs and idle reclamation.
//!
//! ## Determinism obligations for implementors
//!
//! Everything the simulator touches must be a pure function of the
//! constructor inputs and the call sequence. Concretely: derive all
//! randomness from the `(config seed, salt)` pair via [`Xoshiro256`];
//! never iterate a `HashMap`/`HashSet` (lookups are fine); and keep
//! `generate`/`on_result` free of wall-clock, I/O, and global state.
//! DESIGN.md §11 spells out the full contract.
//!
//! [`Xoshiro256`]: ew_sim::Xoshiro256

#![warn(missing_docs)]

pub mod dag;
pub mod faas;
pub mod ramsey;
pub mod unit;

use ew_sim::SimTime;
use ew_state::Validator;

pub use dag::{DagConfig, DagWorkload};
pub use faas::{FaasConfig, FaasWorkload};
pub use ramsey::{execute_unit, ramsey_validator, RamseyConfig, RamseyWorkload};
pub use unit::{ExecStats, WorkResult, WorkUnit};

/// An application the EveryWare scheduling plane can run.
///
/// Each scheduler replica owns an independent instance (diversified by a
/// seed salt); the compute client owns one for executing units and
/// synthesizing reports. All methods are deterministic given the
/// construction inputs and call sequence — see the crate docs.
pub trait Workload: Send {
    /// Short stable name; used in artifact keys, figure stems, and CLI
    /// selection.
    fn name(&self) -> &'static str;

    /// Produce the next unit for `client`, or `None` if no work is
    /// available right now (dependencies unmet, nothing has arrived).
    /// `id` is the scheduler-unique unit id to stamp into the unit; it is
    /// consumed only when `Some` is returned. `step_budget` is the
    /// scheduler's configured default budget, which supply-driven
    /// workloads may ignore in favour of their own cost model.
    fn generate(
        &mut self,
        id: u64,
        now: SimTime,
        client: u64,
        step_budget: u64,
    ) -> Option<WorkUnit>;

    /// Whether the scheduler should scale this workload's budgets by the
    /// client's forecast rate (the §3.1.1 allotment policy). Cost-model
    /// workloads (DAG task sizes, faas cold starts) keep their own
    /// budgets.
    fn rate_scaled_budgets(&self) -> bool {
        false
    }

    /// A completed unit's result arrived. Unlocks successors, advances
    /// progress — whatever the application needs to record.
    fn on_result(&mut self, _result: &WorkResult) {}

    /// The variant to switch a stalled client to, or `None` if this
    /// workload has no variant rotation.
    fn next_variant(&self, _current: u8) -> Option<u8> {
        None
    }

    /// Rebuild a unit for migration to another client: same identity and
    /// arguments, the stalling holder's `variant`, the reported resume
    /// state as payload, and a fresh budget.
    fn remake(&self, unit: &WorkUnit, variant: u8, carry: Vec<u8>, step_budget: u64) -> WorkUnit {
        WorkUnit {
            id: unit.id,
            arg0: unit.arg0,
            arg1: unit.arg1,
            variant,
            seed: unit.id ^ 0xABCD,
            step_budget,
            payload: carry,
        }
    }

    /// Really execute a unit on the calling thread (live mode and
    /// `execute_real` clients). The default is the synthetic model:
    /// the budget is consumed and progress follows [`synth_progress`].
    ///
    /// [`synth_progress`]: Workload::synth_progress
    fn execute(&self, unit: &WorkUnit) -> (WorkResult, ExecStats) {
        (
            self.synth_result(unit, unit.step_budget, unit.step_budget),
            ExecStats::default(),
        )
    }

    /// The synthetic progress curve for simulated (non-real) execution:
    /// an objective that improves with invested steps. Must be monotone
    /// non-increasing so stall detection behaves.
    fn synth_progress(&self, steps: u64) -> u64 {
        1 + 1000 / (1 + steps / 200)
    }

    /// Assemble a synthetic result for a unit the simulation "ran" for
    /// `steps`/`ops` without doing real math.
    fn synth_result(&self, unit: &WorkUnit, steps: u64, ops: u64) -> WorkResult {
        WorkResult {
            unit_id: unit.id,
            steps,
            ops,
            progress: self.synth_progress(steps),
            artifact: Vec::new(),
            carry: unit.payload.clone(),
        }
    }

    /// Persistent-state key under which a unit's artifact is stored.
    fn artifact_key(&self, unit: &WorkUnit) -> String {
        format!("{}/artifact/{}", self.name(), unit.id)
    }

    /// Fraction of the workload completed, if it is finite.
    fn progress(&self) -> Option<f64> {
        None
    }
}

/// A buildable workload description — the configuration-side selector
/// that travels inside `SchedulerConfig`/`ClientConfig`. Workload kind is
/// deployment configuration, not wire state: units stay opaque envelopes.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// The Ramsey counter-example search.
    Ramsey(RamseyConfig),
    /// The DAG workflow.
    Dag(DagConfig),
    /// The bursty serverless stream.
    Faas(FaasConfig),
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::Ramsey(RamseyConfig::default())
    }
}

impl WorkloadSpec {
    /// Ramsey with the default heuristic mix on a specific problem — the
    /// shape every pre-trait `SchedulerConfig { problem, .. }` literal
    /// maps onto.
    pub fn ramsey(problem: ew_ramsey::RamseyProblem) -> Self {
        WorkloadSpec::Ramsey(RamseyConfig {
            problem,
            ..RamseyConfig::default()
        })
    }

    /// The workload's short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Ramsey(_) => "ramsey",
            WorkloadSpec::Dag(_) => "dag",
            WorkloadSpec::Faas(_) => "faas",
        }
    }

    /// Default-configured spec by name (the `--workload` CLI selector).
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        match name {
            "ramsey" => Some(WorkloadSpec::Ramsey(RamseyConfig::default())),
            "dag" => Some(WorkloadSpec::Dag(DagConfig::default())),
            "faas" => Some(WorkloadSpec::Faas(FaasConfig::default())),
            _ => None,
        }
    }

    /// Instantiate the workload. `salt` diversifies scheduler replicas.
    pub fn build(&self, salt: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Ramsey(cfg) => Box::new(RamseyWorkload::new(cfg.clone(), salt)),
            WorkloadSpec::Dag(cfg) => Box::new(DagWorkload::new(cfg.clone(), salt)),
            WorkloadSpec::Faas(cfg) => Box::new(FaasWorkload::new(cfg.clone(), salt)),
        }
    }

    /// The persistent-state validator guarding this workload's artifact
    /// class, if it defines one.
    pub fn validator(&self) -> Option<(u16, Validator)> {
        match self {
            WorkloadSpec::Ramsey(_) => Some((1, ramsey_validator())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_names() {
        for name in ["ramsey", "dag", "faas"] {
            let spec = WorkloadSpec::by_name(name).unwrap();
            assert_eq!(spec.name(), name);
            assert_eq!(spec.build(0).name(), name);
        }
        assert!(WorkloadSpec::by_name("tsp").is_none());
    }

    #[test]
    fn default_spec_matches_the_legacy_scheduler_default() {
        match WorkloadSpec::default() {
            WorkloadSpec::Ramsey(cfg) => {
                assert_eq!(cfg.problem, ew_ramsey::RamseyProblem { k: 5, n: 43 });
                assert_eq!(cfg.heuristic_mix, vec![0, 1, 2]);
            }
            other => panic!("default must be Ramsey, got {other:?}"),
        }
    }

    #[test]
    fn default_remake_reproduces_the_legacy_migration_unit() {
        let spec = WorkloadSpec::default();
        let mut w = spec.build(0);
        let unit = w.generate(5, SimTime::ZERO, 1, 2_000).unwrap();
        let remade = w.remake(&unit, 2, vec![9, 9], 2_000);
        assert_eq!(remade.id, 5);
        assert_eq!(remade.arg0, unit.arg0);
        assert_eq!(remade.arg1, unit.arg1);
        assert_eq!(remade.variant, 2);
        assert_eq!(remade.seed, 5 ^ 0xABCD);
        assert_eq!(remade.step_budget, 2_000);
        assert_eq!(remade.payload, vec![9, 9]);
    }

    #[test]
    fn only_ramsey_registers_a_validator() {
        assert!(WorkloadSpec::by_name("ramsey")
            .unwrap()
            .validator()
            .is_some());
        assert!(WorkloadSpec::by_name("dag").unwrap().validator().is_none());
        assert!(WorkloadSpec::by_name("faas").unwrap().validator().is_none());
    }

    #[test]
    fn synthetic_model_matches_the_legacy_client_curve() {
        let w = WorkloadSpec::default().build(0);
        // The exact `1 + 1000/(1 + steps/200)` curve the old client
        // hardcoded in two places.
        assert_eq!(w.synth_progress(0), 1001);
        assert_eq!(w.synth_progress(200), 501);
        assert_eq!(w.synth_progress(2_000), 91);
        let unit = WorkUnit {
            id: 3,
            payload: vec![1],
            ..WorkUnit::default()
        };
        let r = w.synth_result(&unit, 400, 4_000_000);
        assert_eq!(r.unit_id, 3);
        assert_eq!(r.steps, 400);
        assert_eq!(r.ops, 4_000_000);
        assert_eq!(r.progress, 1 + 1000 / 3);
        assert!(r.artifact.is_empty());
        assert_eq!(r.carry, vec![1]);
    }
}
