//! A bursty serverless-style workload: Poisson-burst invocation arrival,
//! cold-start cost on a host's first (or long-idle) unit, idle
//! reclamation of warm containers.
//!
//! The arrival schedule is precomputed at construction: exponential
//! inter-arrival gaps, each arrival carrying a Poisson-sized burst of
//! invocations (see dslab-faas for the modelling idiom). `generate` then
//! releases invocations as simulated time reaches them — a unit is
//! available only once its arrival instant has passed, so a scheduler
//! polled early answers "no work" exactly like a serverless front end
//! with an empty queue.
//!
//! Cold starts: the first invocation granted to a client, or the first
//! after more than `idle_timeout` of that client not being granted work,
//! pays `cold_start_steps` on top of `exec_steps` (the platform reclaimed
//! the idle container). The unit's `arg1` records whether it was cold, so
//! results can be attributed in figures.

use ew_sim::{SimDuration, SimTime, Xoshiro256};
use std::collections::HashMap;

use crate::unit::{WorkResult, WorkUnit};
use crate::Workload;

/// Configuration for the bursty serverless workload.
#[derive(Clone, Debug, PartialEq)]
pub struct FaasConfig {
    /// Mean seconds between bursts (exponential).
    pub mean_interarrival_secs: f64,
    /// Mean invocations per burst (Poisson, at least one).
    pub burst_mean: f64,
    /// Arrivals are generated up to this horizon (seconds).
    pub horizon_secs: u64,
    /// Steps a warm invocation costs.
    pub exec_steps: u64,
    /// Extra steps a cold start costs.
    pub cold_start_steps: u64,
    /// A client idle longer than this is reclaimed and restarts cold.
    pub idle_timeout: SimDuration,
    /// Seed for the arrival schedule.
    pub seed: u64,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            mean_interarrival_secs: 30.0,
            burst_mean: 6.0,
            horizon_secs: 1_800,
            exec_steps: 3_000,
            cold_start_steps: 2_000,
            idle_timeout: SimDuration::from_secs(120),
            seed: 1998,
        }
    }
}

/// A deterministic serverless invocation stream; see the module docs.
pub struct FaasWorkload {
    cfg: FaasConfig,
    salt: u64,
    /// Precomputed invocation arrival instants, non-decreasing.
    arrivals: Vec<SimTime>,
    /// Next arrival index to release.
    next: usize,
    /// Per-client last grant time — the warm-container table. Lookups
    /// only; never iterated, so determinism is safe.
    warm: HashMap<u64, SimTime>,
    cold_grants: u64,
    completed: u64,
}

impl FaasWorkload {
    /// Precompute the arrival schedule from `(cfg.seed, salt)`.
    pub fn new(cfg: FaasConfig, salt: u64) -> Self {
        let mut rng =
            Xoshiro256::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut arrivals = Vec::new();
        let mut t = 0.0_f64;
        let horizon = cfg.horizon_secs as f64;
        loop {
            t += rng.exponential(cfg.mean_interarrival_secs.max(1e-6));
            if t >= horizon {
                break;
            }
            // Poisson burst size by Knuth's product-of-uniforms, min 1.
            let l = (-cfg.burst_mean.max(0.0)).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    break;
                }
                k += 1;
            }
            for _ in 0..k.max(1) {
                arrivals.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
            }
        }
        FaasWorkload {
            cfg,
            salt,
            arrivals,
            next: 0,
            warm: HashMap::new(),
            cold_grants: 0,
            completed: 0,
        }
    }

    /// Total invocations in the schedule.
    pub fn total(&self) -> usize {
        self.arrivals.len()
    }

    /// Invocations granted cold so far.
    pub fn cold_grants(&self) -> u64 {
        self.cold_grants
    }
}

impl Workload for FaasWorkload {
    fn name(&self) -> &'static str {
        "faas"
    }

    fn generate(
        &mut self,
        id: u64,
        now: SimTime,
        client: u64,
        _step_budget: u64,
    ) -> Option<WorkUnit> {
        if self.next >= self.arrivals.len() || self.arrivals[self.next] > now {
            return None;
        }
        let cold = match self.warm.get(&client) {
            None => true,
            Some(&last) => now.since(last) > self.cfg.idle_timeout,
        };
        self.warm.insert(client, now);
        let invocation = self.next;
        self.next += 1;
        if cold {
            self.cold_grants += 1;
        }
        Some(WorkUnit {
            id,
            arg0: invocation as u32,
            arg1: cold as u32,
            variant: 0,
            seed: (self.cfg.seed ^ self.salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id),
            step_budget: self.cfg.exec_steps + if cold { self.cfg.cold_start_steps } else { 0 },
            payload: Vec::new(),
        })
    }

    fn on_result(&mut self, _result: &WorkResult) {
        self.completed += 1;
    }

    fn progress(&self) -> Option<f64> {
        Some(self.completed as f64 / self.arrivals.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaasConfig {
        FaasConfig {
            mean_interarrival_secs: 20.0,
            burst_mean: 4.0,
            horizon_secs: 600,
            exec_steps: 1_000,
            cold_start_steps: 500,
            idle_timeout: SimDuration::from_secs(60),
            seed: 3,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_bursty() {
        let a = FaasWorkload::new(cfg(), 0);
        let b = FaasWorkload::new(cfg(), 0);
        assert_eq!(a.arrivals, b.arrivals);
        assert!(a.total() > 10, "600 s at ~20 s mean gaps: {}", a.total());
        // Bursts: at least one arrival instant repeats.
        assert!(
            a.arrivals.windows(2).any(|w| w[0] == w[1]),
            "no burst of size > 1 in the whole schedule"
        );
        // Arrivals are ordered.
        assert!(a.arrivals.windows(2).all(|w| w[0] <= w[1]));
        // A different salt shifts the schedule.
        let c = FaasWorkload::new(cfg(), 9);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn invocations_release_only_after_arrival() {
        let mut w = FaasWorkload::new(cfg(), 0);
        assert!(
            w.generate(0, SimTime::ZERO, 1, 0).is_none(),
            "nothing has arrived at t=0"
        );
        let first = w.arrivals[0];
        let u = w.generate(0, first, 1, 0).expect("first arrival released");
        assert_eq!(u.arg0, 0);
        assert_eq!(u.arg1, 1, "first grant to a client is cold");
        assert_eq!(u.step_budget, 1_000 + 500);
    }

    #[test]
    fn cold_starts_follow_warmth_and_idle_reclamation() {
        let mut w = FaasWorkload::new(cfg(), 0);
        let end = SimTime::from_secs(600);
        let a = w.generate(0, end, 7, 0).unwrap();
        assert_eq!(a.arg1, 1, "first unit on a host is cold");
        let b = w.generate(1, end, 7, 0).unwrap();
        assert_eq!(b.arg1, 0, "immediately warm");
        assert_eq!(b.step_budget, 1_000);
        let c = w.generate(2, end, 8, 0).unwrap();
        assert_eq!(c.arg1, 1, "a different host starts cold");
        // Beyond the idle timeout the container was reclaimed.
        let later = end + SimDuration::from_secs(61);
        let d = w.generate(3, later, 7, 0).unwrap();
        assert_eq!(d.arg1, 1, "idle container reclaimed");
        assert_eq!(w.cold_grants(), 3);
    }

    #[test]
    fn stream_drains_exactly_once() {
        let mut w = FaasWorkload::new(cfg(), 0);
        let total = w.total();
        let end = SimTime::from_secs(600);
        let mut granted = 0u64;
        while let Some(u) = w.generate(granted, end, 1, 0) {
            w.on_result(&WorkResult {
                unit_id: u.id,
                ..WorkResult::default()
            });
            granted += 1;
        }
        assert_eq!(granted as usize, total);
        assert_eq!(w.progress(), Some(1.0));
    }
}
