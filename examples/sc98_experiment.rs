//! Re-run the SC98 High-Performance Computing Challenge experiment.
//!
//! The full Figure-2 scenario: seven infrastructures, ~280 hosts, the
//! EveryWare service stack, twelve simulated hours ending at 11:36:56 PST,
//! judging contention at 11:00. Prints the headline numbers and the
//! around-the-judging-window excerpt of the 5-minute series.
//!
//! ```text
//! cargo run --release --example sc98_experiment            # full 12 h
//! cargo run --release --example sc98_experiment -- 7200    # 2-h smoke run
//! ```

use everyware::{pst_label, run_sc98, Sc98Config, JUDGING_START_S, WINDOW_S};
use ew_sim::{SimDuration, SimTime};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(WINDOW_S);
    let cfg = Sc98Config {
        duration: SimDuration::from_secs(secs),
        judging: secs > JUDGING_START_S,
        ..Sc98Config::default()
    };
    eprintln!("simulating {secs} seconds of SC98 (seed {})...", cfg.seed);
    let rep = run_sc98(&cfg);

    println!("== SC98 rerun ==");
    println!("total useful ops delivered : {:.3e}", rep.total_ops);
    println!(
        "peak 5-min rate            : {:.3e} ops/s  (paper: 2.39e9)",
        rep.peak_rate
    );
    if cfg.judging {
        println!(
            "judging-window dip         : {:.3e} ops/s  (paper: 1.1e9)",
            rep.judging_min_rate
        );
        println!(
            "recovered final rate       : {:.3e} ops/s  (paper: 2.0e9)",
            rep.final_rate
        );
    }
    println!("CoV of total series        : {:.3}", rep.cov_total);
    println!();
    println!("infrastructure means (ops/s):");
    let mut rows: Vec<(String, f64)> = rep
        .per_infra
        .iter()
        .map(|(k, v)| (k.clone(), everyware::mean(v)))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, m) in rows {
        println!(
            "  {name:>9}: {m:.3e}   (CoV {:.2})",
            rep.cov_per_infra[&name]
        );
    }

    if cfg.judging {
        println!("\n5-minute series around the judging window:");
        for p in rep
            .total
            .iter()
            .filter(|p| p.t >= SimTime::from_secs(JUDGING_START_S.saturating_sub(1800)))
        {
            let bar_len = (p.value / 5e7) as usize;
            println!(
                "  {}  {:>10.3e}  {}",
                pst_label(p.t),
                p.value,
                "#".repeat(bar_len.min(60))
            );
        }
    }
}
