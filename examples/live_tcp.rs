//! The lingua franca on real sockets: typed packets, framing, correlation,
//! and dynamic time-out discovery over loopback TCP.
//!
//! A tiny echo-style "benchmark server" answers typed requests with a
//! deliberate, drifting service delay; the client times every exchange,
//! feeds the RTTs to the NWS forecaster battery, and prints how the armed
//! time-out tracks the drift — §2.2's mechanism, observable on a real
//! network stack.
//!
//! ```text
//! cargo run --release --example live_tcp
//! ```

use std::time::{Duration, Instant};

use ew_forecast::ForecastTimeout;
use ew_proto::tcp::TcpNode;
use ew_proto::{mtype, EventTag, Packet, TimeoutPolicy, WireEncode};
use ew_sim::SimDuration;

const MT_PROBE: u16 = mtype::APP_BASE + 1;

fn main() -> std::io::Result<()> {
    let server = TcpNode::bind("127.0.0.1:0")?;
    let server_addr = server.local_addr();
    println!("server listening on {server_addr}");

    // Server thread: replies after a delay that doubles halfway through —
    // the "ambient load conditions" the forecasters must track.
    let server_thread = std::thread::spawn(move || {
        let mut served = 0u32;
        while served < 30 {
            if let Some(mut inc) = server.recv_timeout(Duration::from_secs(10)) {
                if inc.packet.mtype == MT_PROBE && inc.packet.is_request() {
                    let busy = served >= 15;
                    let delay = if busy { 80 } else { 20 };
                    std::thread::sleep(Duration::from_millis(delay));
                    let body = (served, busy).to_wire();
                    let _ = inc.reply(&Packet::response_to(&inc.packet, body));
                    served += 1;
                }
            } else {
                break;
            }
        }
    });

    // Client: request/response with forecast-discovered time-outs.
    let mut client = TcpNode::bind("127.0.0.1:0")?;
    let mut policy = ForecastTimeout::wan_default();
    let tag = EventTag {
        peer: 1,
        mtype: MT_PROBE,
    };
    println!("\n| probe | RTT (ms) | armed time-out (ms) | winning forecaster |");
    println!("|---|---|---|---|");
    for i in 0..30u64 {
        let armed = policy.timeout_for(tag);
        let sent = Instant::now();
        client.send(server_addr, &Packet::request(MT_PROBE, i + 1, vec![]))?;
        match client.recv_timeout(Duration::from_secs_f64(armed.as_secs_f64())) {
            Some(inc) => {
                let rtt = sent.elapsed();
                policy.observe_rtt(tag, SimDuration::from_secs_f64(rtt.as_secs_f64()));
                let (seq, busy): (u32, bool) = inc.packet.body().expect("typed body decodes");
                println!(
                    "| {seq}{} | {:.1} | {:.1} | (battery of 17, MAE-ranked) |",
                    if busy { " (busy)" } else { "" },
                    rtt.as_secs_f64() * 1e3,
                    armed.as_secs_f64() * 1e3,
                );
            }
            None => {
                policy.observe_timeout(tag);
                println!("| {i} | TIMED OUT | {:.1} | — |", armed.as_secs_f64() * 1e3);
            }
        }
    }
    let _ = server_thread.join();
    println!(
        "\nThe armed time-out converged near 4x the observed RTT and re-adapted\n\
         when the server slowed — no static guess, no needless retries (§2.2)."
    );
    Ok(())
}
