//! Quickstart: a small EveryWare deployment on the simulated Grid.
//!
//! Builds a three-site world, deploys the full service stack (Gossip pool,
//! schedulers, persistent state with the Ramsey sanity check, logging),
//! hands eight heterogeneous hosts to an infrastructure supervisor, and
//! lets the application draw power for ten simulated minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use everyware::{DeployConfig, Deployment};
use ew_infra::{InfraSpec, InfraSupervisor};
use ew_ramsey::RamseyProblem;
use ew_sched::{ClientConfig, SchedulerConfig, SchedulerServer};
use ew_sim::{HostSpec, HostTable, NetModel, Sim, SimDuration, SimTime, SiteSpec};
use ew_workload::WorkloadSpec;

fn main() {
    // 1. A world: three sites, one of them noticeably loaded.
    let mut net = NetModel::new(0.1);
    let hq = net.add_site(SiteSpec::simple(
        "hq",
        SimDuration::from_millis(10),
        2.5e6,
        0.05,
    ));
    let lab = net.add_site(SiteSpec::simple(
        "lab",
        SimDuration::from_millis(25),
        1.25e6,
        0.10,
    ));
    let campus = net.add_site(SiteSpec::simple(
        "campus",
        SimDuration::from_millis(40),
        1.25e6,
        0.30,
    ));

    // 2. Hosts: services at HQ, compute spread across the other sites with
    //    a 20x speed spread.
    let mut hosts = HostTable::new();
    let service_hosts = ew_infra::ServiceHosts {
        gossips: vec![
            hosts.add(HostSpec::dedicated("gossip-a", hq, 5e7)),
            hosts.add(HostSpec::dedicated("gossip-b", lab, 5e7)),
        ],
        schedulers: vec![
            hosts.add(HostSpec::dedicated("sched-a", hq, 8e7)),
            hosts.add(HostSpec::dedicated("sched-b", lab, 8e7)),
        ],
        state: hosts.add(HostSpec::dedicated("state", hq, 5e7)),
        log: hosts.add(HostSpec::dedicated("log", hq, 5e7)),
    };
    let compute: Vec<_> = (0..8)
        .map(|i| {
            let (site, speed) = if i < 4 { (lab, 1e8) } else { (campus, 5e6) };
            hosts.add(HostSpec::dedicated(&format!("node-{i}"), site, speed))
        })
        .collect();

    // 3. Deploy the EveryWare stack and one infrastructure.
    let mut sim = Sim::new(net, hosts, 7);
    let dep = Deployment::builder(DeployConfig {
        sched: SchedulerConfig {
            workload: WorkloadSpec::ramsey(RamseyProblem { k: 5, n: 43 }),
            step_budget: 2_000,
            ..SchedulerConfig::default()
        },
        ..DeployConfig::default()
    })
    .gossip_pool(&service_hosts.gossips)
    .schedulers(&service_hosts.schedulers)
    .state_manager(service_hosts.state)
    .log_server(service_hosts.log)
    .spawn(&mut sim);
    sim.spawn(
        "supervisor",
        service_hosts.log,
        Box::new(InfraSupervisor::new(InfraSpec {
            name: "quickstart".into(),
            hosts: compute,
            invocation_delay: SimDuration::from_secs(2),
            stagger: SimDuration::from_secs(1),
            client_template: ClientConfig {
                schedulers: dep.scheduler_addrs(),
                state_server: Some(dep.state_addr()),
                report_interval: SimDuration::from_secs(30),
                chunk_ops: 100_000_000,
                ops_per_step: 1_000_000,
                ..ClientConfig::default()
            },
            sample_interval: SimDuration::from_secs(60),
        })),
    );

    // 4. Draw power for ten minutes.
    let stats = sim.run_until(SimTime::from_secs(600));

    let total_ops = sim.metrics().counter("ops.total");
    println!("simulated 10 minutes in {} events", stats.events);
    println!(
        "delivered {:.3e} useful integer ops ({:.3e} ops/s sustained)",
        total_ops,
        total_ops / 600.0
    );
    println!(
        "work units completed: {:.0}",
        sim.metrics().counter("sched.results")
    );
    println!(
        "scheduler migrations of slow hosts' work: {:.0}",
        sim.metrics().counter("client.abandons")
    );
    let best = sim
        .with_process::<SchedulerServer, _>(dep.schedulers[0], |s| s.best_known.clone())
        .flatten();
    match best {
        Some((count, _)) => {
            println!("best R(5,5) coloring seen pool-wide: {count} monochromatic 5-cliques")
        }
        None => println!("no best-state synchronized yet (run longer)"),
    }
}
