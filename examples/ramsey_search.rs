//! Real Ramsey-number counter-example search over real TCP.
//!
//! Runs the live runtime (`everyware::live`): an actual scheduler process
//! and worker threads exchanging lingua-franca packets over loopback
//! sockets, each worker executing genuine heuristic search. Proves
//! `R(3) > 5` and `R(4) > 17` by finding and verifying counter-examples,
//! then prints the witnesses.
//!
//! ```text
//! cargo run --release --example ramsey_search
//! ```

use std::time::Duration;

use everyware::{run_live, LiveConfig};
use ew_ramsey::{Color, ColoredGraph, RamseyProblem};

fn render(g: &ColoredGraph) -> String {
    let mut out = String::new();
    for u in 0..g.n() {
        for v in 0..g.n() {
            out.push(if u == v {
                '·'
            } else if g.edge(u, v) == Color::Red {
                'R'
            } else {
                'b'
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn prove(k: u32, n: u32, step_budget: u64, units: u64) {
    println!("=== searching for a witness that R({k}) > {n} ===");
    let out = run_live(&LiveConfig {
        workers: 4,
        problem: RamseyProblem { k, n },
        step_budget,
        units,
        deadline: Duration::from_secs(120),
        stop_on_witness: true,
        ..LiveConfig::default()
    })
    .expect("loopback bind");
    println!(
        "{} workers, {} units returned, {:.3e} useful ops, {:?} elapsed",
        out.workers_heard,
        out.results.len(),
        out.total_ops as f64,
        out.elapsed
    );
    match out.witnesses.first() {
        Some(w) => {
            println!(
                "verified: a 2-coloring of K{n} with no monochromatic {k}-clique exists, so R({k}) > {n}.\n"
            );
            println!("{}", render(w));
        }
        None => println!("no witness found within the budget — raise step_budget/units.\n"),
    }
}

fn parallel_r5_taste() {
    // §6: "to search for R6, we will need to parallelize some of the
    // individual heuristics". ParallelSteepest evaluates all 903 edges of
    // a 43-vertex coloring concurrently per step. R(5) ≥ 43 was the open
    // frontier at SC98; a counter-example will not fall out in seconds,
    // but the objective should plunge.
    use ew_ramsey::{ParallelSteepest, SearchState};
    use ew_sim::Xoshiro256;
    println!("=== parallel steepest descent on the R(5) 43-vertex frontier ===");
    let mut rng = Xoshiro256::seed_from_u64(1998);
    let mut state = SearchState::random(43, 5, &mut rng);
    let start_count = state.count();
    let mut h = ParallelSteepest::default();
    let t0 = std::time::Instant::now();
    let rep = ew_ramsey::run_search(&mut state, &mut h, &mut rng, 400);
    println!(
        "{} steps, {:.3e} ops, monochromatic 5-cliques {} -> {} (best {}), {:?}",
        rep.steps,
        rep.ops as f64,
        start_count,
        state.count(),
        rep.best_count,
        t0.elapsed()
    );
}

fn main() {
    // R(3) = 6: a pentagon-like witness on 5 vertices is easy.
    prove(3, 5, 2_000, 16);
    // R(4) = 18: a 17-vertex witness (Paley(17) is one) takes real search.
    prove(4, 17, 30_000, 64);
    parallel_r5_taste();
    println!(
        "(For scale: the SC98 application searched 43-vertex colorings for R(5),\n\
         a 2^903-point space, across seven Grid infrastructures.)"
    );
}
